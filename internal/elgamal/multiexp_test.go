package elgamal

import (
	"bytes"
	"io"
	"math/big"
	"sync"
	"testing"

	"zaatar/internal/field"
	"zaatar/internal/prg"
)

// subgroupBases returns n pseudorandom elements of the order-Q subgroup
// (powers of the generator — the kernel contract).
func subgroupBases(g *Group, n int, rnd io.Reader) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		e, err := randExponent(g.Q, rnd)
		if err != nil {
			panic(err)
		}
		out[i] = new(big.Int).Exp(g.G, e, g.P)
	}
	return out
}

// multiExpCase builds (bases, exps) for one property-test shape.
func multiExpCase(t *testing.T, g *Group, name string) ([]*big.Int, []*big.Int) {
	t.Helper()
	rnd := prg.NewFromSeed([]byte("multiexp-case-"+name), 7)
	switch name {
	case "empty":
		return nil, nil
	case "single":
		return subgroupBases(g, 1, rnd), []*big.Int{big.NewInt(12345)}
	case "zero-scalars":
		bases := subgroupBases(g, 9, rnd)
		exps := make([]*big.Int, 9)
		for i := range exps {
			exps[i] = big.NewInt(0)
		}
		exps[4] = big.NewInt(77) // one survivor among the skips
		return bases, exps
	case "all-zero":
		bases := subgroupBases(g, 6, rnd)
		exps := make([]*big.Int, 6)
		for i := range exps {
			exps[i] = big.NewInt(0)
		}
		return bases, exps
	case "repeated-bases":
		b := subgroupBases(g, 1, rnd)[0]
		bases := make([]*big.Int, 40)
		exps := make([]*big.Int, 40)
		for i := range bases {
			bases[i] = b
			exps[i] = big.NewInt(int64(3*i + 1))
		}
		return bases, exps
	case "above-order":
		// Exponents at and beyond Q exercise the reduction path; valid
		// because the bases have order Q.
		bases := subgroupBases(g, 5, rnd)
		q := g.Q
		return bases, []*big.Int{
			new(big.Int).Set(q),
			new(big.Int).Add(q, big.NewInt(1)),
			new(big.Int).Mul(q, big.NewInt(3)),
			new(big.Int).Sub(q, big.NewInt(1)),
			new(big.Int).Lsh(q, 130),
		}
	case "straus-size":
		bases := subgroupBases(g, 33, rnd)
		exps := make([]*big.Int, 33)
		for i := range exps {
			e, _ := randExponent(g.Q, rnd)
			exps[i] = e
		}
		return bases, exps
	case "pippenger-size":
		bases := subgroupBases(g, 150, rnd)
		exps := make([]*big.Int, 150)
		for i := range exps {
			e, _ := randExponent(g.Q, rnd)
			exps[i] = e
		}
		return bases, exps
	}
	t.Fatalf("unknown case %q", name)
	return nil, nil
}

func TestMultiExpMatchesNaive(t *testing.T) {
	g, _ := testGroup(t)
	cases := []string{
		"empty", "single", "zero-scalars", "all-zero", "repeated-bases",
		"above-order", "straus-size", "pippenger-size",
	}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			bases, exps := multiExpCase(t, g, name)
			want := g.MultiExpNaive(bases, exps)
			if got := g.MultiExp(bases, exps); got.Cmp(want) != 0 {
				t.Errorf("MultiExp = %v, want %v", got, want)
			}
			if got := g.MultiExpStraus(bases, exps); got.Cmp(want) != 0 {
				t.Errorf("MultiExpStraus = %v, want %v", got, want)
			}
			if got := g.MultiExpPippenger(bases, exps); got.Cmp(want) != 0 {
				t.Errorf("MultiExpPippenger = %v, want %v", got, want)
			}
			if got := g.MultiExpSigned(bases, exps); got.Cmp(want) != 0 {
				t.Errorf("MultiExpSigned = %v, want %v", got, want)
			}
			for _, workers := range []int{1, 2, 3, 8} {
				if got := g.MultiExpParallel(bases, exps, workers); got.Cmp(want) != 0 {
					t.Errorf("MultiExpParallel(workers=%d) = %v, want %v", workers, got, want)
				}
			}
		})
	}
}

func TestMultiExpLengthMismatchPanics(t *testing.T) {
	g, _ := testGroup(t)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	g.MultiExp(make([]*big.Int, 2), make([]*big.Int, 3))
}

// fuzzGroup is shared across fuzz iterations; group search is too slow to
// redo per input.
var fuzzGroup = sync.OnceValue(func() *Group {
	f := field.FTiny()
	rnd := prg.NewFromSeed([]byte("multiexp-fuzz-group"), 0)
	g, err := GenerateGroup(f.Modulus(), 256, rnd)
	if err != nil {
		panic(err)
	}
	return g
})

func FuzzMultiExp(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte("interleaved windows"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGroup()
		// Derive (n, exps) from the fuzz input: each 4-byte chunk is one
		// exponent (so values above Q and zeros occur naturally), bases are
		// seeded subgroup elements.
		n := len(data) / 4
		if n > 96 {
			n = 96
		}
		exps := make([]*big.Int, n)
		for i := range exps {
			exps[i] = new(big.Int).SetBytes(data[i*4 : i*4+4])
		}
		rnd := prg.NewFromSeed(append([]byte("fuzz-bases"), byte(n)), 11)
		bases := subgroupBases(g, n, rnd)
		want := g.MultiExpNaive(bases, exps)
		if got := g.MultiExp(bases, exps); got.Cmp(want) != 0 {
			t.Fatalf("MultiExp = %v, want %v (n=%d)", got, want, n)
		}
		if got := g.MultiExpPippenger(bases, exps); got.Cmp(want) != 0 {
			t.Fatalf("MultiExpPippenger = %v, want %v (n=%d)", got, want, n)
		}
	})
}

func TestFixedBaseTableExp(t *testing.T) {
	g, _ := testGroup(t)
	rnd := prg.NewFromSeed([]byte("fixed-base"), 8)
	for _, base := range []*big.Int{g.G, subgroupBases(g, 1, rnd)[0]} {
		tb := g.FixedBase(base)
		exps := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			new(big.Int).Sub(g.Q, big.NewInt(1)),
			new(big.Int).Set(g.Q),              // reduces to identity
			new(big.Int).Add(g.Q, big.NewInt(5)), // above the order
			new(big.Int).Lsh(g.Q, 64),
		}
		for i := 0; i < 20; i++ {
			e, _ := randExponent(g.Q, rnd)
			exps = append(exps, e)
		}
		for _, e := range exps {
			want := new(big.Int).Exp(base, new(big.Int).Mod(e, g.Q), g.P)
			if got := tb.Exp(e); got.Cmp(want) != 0 {
				t.Errorf("FixedBase(%v).Exp(%v) = %v, want %v", base, e, got, want)
			}
		}
	}
}

func TestFixedBaseCacheSharing(t *testing.T) {
	g, _ := testGroup(t)
	if g.FixedBase(g.G) != g.GeneratorTable() {
		t.Error("repeated FixedBase(G) did not return the cached table")
	}
	// A value-equal (not pointer-equal) base must hit the same entry.
	if g.FixedBase(new(big.Int).Set(g.G)) != g.GeneratorTable() {
		t.Error("value-equal base missed the cache")
	}
	// Overflow the cache and confirm results stay correct after eviction.
	rnd := prg.NewFromSeed([]byte("cache-evict"), 9)
	bases := subgroupBases(g, tableCacheCap+3, rnd)
	for _, b := range bases {
		g.FixedBase(b)
	}
	e := big.NewInt(4242)
	want := new(big.Int).Exp(g.G, e, g.P)
	if got := g.GeneratorTable().Exp(e); got.Cmp(want) != 0 {
		t.Error("generator table wrong after cache churn")
	}
}

// byteScript replays a fixed byte sequence one Read at a time.
type byteScript struct {
	data []byte
	pos  int
}

func (r *byteScript) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

func TestRandExponentRejection(t *testing.T) {
	// q = 101: 7 bits, one byte per draw, top bit shifted away. The script
	// forces two rejections — 0xFF → 127 ≥ q, 0x00 → 0 (not in [1, q)) —
	// before an accepting draw: 0x42 → 66 >> 1 = 33.
	q := big.NewInt(101)
	rd := &byteScript{data: []byte{0xFF, 0x00, 0x42}}
	v, err := randExponent(q, rd)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int64() != 33 {
		t.Errorf("randExponent = %v, want 33", v)
	}
	if rd.pos != 3 {
		t.Errorf("consumed %d bytes, want 3 (two rejected draws)", rd.pos)
	}

	// Strictly below q and strictly positive over many seeded draws.
	rnd := prg.NewFromSeed([]byte("rand-exponent-range"), 10)
	for i := 0; i < 2000; i++ {
		v, err := randExponent(q, rnd)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() <= 0 || v.Cmp(q) >= 0 {
			t.Fatalf("draw %d out of [1, q): %v", i, v)
		}
	}

	// A source that dries up propagates the read error.
	if _, err := randExponent(q, &byteScript{data: []byte{0xFF}}); err == nil {
		t.Error("exhausted reader did not error")
	}
}

func TestEncryptVectorParallelDeterministic(t *testing.T) {
	g, f := testGroup(t)
	krnd := prg.NewFromSeed([]byte("keys"), 12)
	sk, err := g.GenerateKey(krnd)
	if err != nil {
		t.Fatal(err)
	}
	v := f.RandVector(65, krnd)
	serial, err := sk.EncryptVector(f, v, prg.NewFromSeed([]byte("enc-par"), 13))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := sk.EncryptVectorParallel(f, v, prg.NewFromSeed([]byte("enc-par"), 13), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i].A.Cmp(par[i].A) != 0 || serial[i].B.Cmp(par[i].B) != 0 {
				t.Fatalf("workers=%d: ciphertext %d differs from serial path", workers, i)
			}
		}
	}
}

func TestInnerProductParallelEquivalence(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("ip-par"), 14)
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		t.Fatal(err)
	}
	n := 130
	m := f.RandVector(n, rnd)
	u := f.RandVector(n, rnd)
	u[0], u[17] = f.Zero(), f.Zero()
	cts, err := sk.EncryptVector(f, m, rnd)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.InnerProduct(cts, f, u)
	if err != nil {
		t.Fatal(err)
	}
	if sk.DecryptExp(want).Cmp(g.ExpOfField(f, f.InnerProduct(m, u))) != 0 {
		t.Fatal("serial inner product decrypts wrong")
	}
	for _, workers := range []int{2, 3, 16} {
		got, err := g.InnerProductParallel(cts, f, u, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.A.Cmp(want.A) != 0 || got.B.Cmp(want.B) != 0 {
			t.Errorf("workers=%d: parallel inner product differs from serial", workers)
		}
	}
}

func TestMontCtxRoundTrip(t *testing.T) {
	g, _ := testGroup(t)
	m := newMontCtx(g.P)
	rnd := prg.NewFromSeed([]byte("mont"), 15)
	t1 := m.scratch()
	a := make([]uint64, m.n)
	b := make([]uint64, m.n)
	for i := 0; i < 200; i++ {
		x, _ := randExponent(g.P, rnd)
		y, _ := randExponent(g.P, rnd)
		m.toMont(a, x, t1)
		m.toMont(b, y, t1)
		m.mul(a, a, b, t1)
		got := m.fromMont(a, t1)
		want := new(big.Int).Mul(x, y)
		want.Mod(want, g.P)
		if got.Cmp(want) != 0 {
			t.Fatalf("mont mul mismatch: %v * %v = %v, want %v", x, y, got, want)
		}
	}
}
