package elgamal

import (
	"math/rand"
	"testing"
)

func BenchmarkMontMul(b *testing.B) {
	g := GroupF128()
	m := g.kern().m
	rng := rand.New(rand.NewSource(1))
	a := make([]uint64, m.n)
	c := make([]uint64, m.n)
	for i := range a {
		a[i] = rng.Uint64()
		c[i] = rng.Uint64()
	}
	a[m.n-1] %= m.p[m.n-1]
	c[m.n-1] %= m.p[m.n-1]
	t := m.scratch()
	b.Run("dispatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.mul(a, a, c, t)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.mulGeneric(a, a, c, t)
		}
	})
}
