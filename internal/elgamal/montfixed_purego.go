//go:build purego

package elgamal

// hasFixedMont is false under the purego tag: every Montgomery context runs
// the variable-width CIOS loop, which CI exercises to keep the generic lane
// honest.
const hasFixedMont = false

// The stubs are never reached when hasFixedMont is false; they keep the
// dispatch switch in montCtx.mul compiling without a build-tag fork there.

func mulMont16(p *[16]uint64, inv uint64, dst, a, b *[16]uint64) {
	panic("elgamal: fixed-width path called in purego build")
}

func mulMont4(p *[4]uint64, inv uint64, dst, a, b *[4]uint64) {
	panic("elgamal: fixed-width path called in purego build")
}
