package elgamal

import (
	"context"
	"errors"
	"math/big"
	"sync"

	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/par"
)

// This file implements the group-arithmetic kernels behind the homomorphic
// commitment path: Straus and Pippenger multi-exponentiation with automatic
// window selection, and worker-pool sharding of both. All group
// multiplications run in the Montgomery domain (mont.go) on preallocated
// limb slices, so a length-n inner product costs ~2n·(qbits/w) group mults
// instead of 2n independent full-width modexps — the Figure 3 "e·|u|" term
// this package exists to shrink.
//
// Kernel activity is recorded into the process-wide obs registry
// (obs.Default()) under the metric names below, documented in
// docs/PROTOCOL.md.
const (
	// MetricMultiExpCalls counts multi-exponentiation kernel invocations.
	MetricMultiExpCalls = "elgamal.multiexp.calls"
	// MetricMultiExpBases counts total (base, exponent) pairs processed.
	MetricMultiExpBases = "elgamal.multiexp.bases"
	// MetricMultiExpSpan is the per-call latency histogram.
	MetricMultiExpSpan = "elgamal.multiexp"
	// MetricFixedBaseExps counts fixed-base table exponentiations.
	MetricFixedBaseExps = "elgamal.fixedbase.exps"
	// MetricFixedBaseTables counts fixed-base table builds.
	MetricFixedBaseTables = "elgamal.fixedbase.tables"
)

// kernels is a Group's lazily-built kernel state: the Montgomery context
// for P and the fixed-base table cache. Groups that arrive over the wire
// (gob decodes only the exported P, G, Q) rebuild it on first use.
type kernels struct {
	m *montCtx

	mu     sync.Mutex
	tables []*tableEntry // small MRU cache, see table.go
}

// kern returns the Group's kernel state, building it on first use.
func (g *Group) kern() *kernels {
	g.konce.Do(func() { g.kernels = &kernels{m: newMontCtx(g.P)} })
	return g.kernels
}

// scalars holds exponents reduced mod Q as fixed-width little-endian limbs,
// ready for windowed digit extraction. All kernels share one reduction pass.
type scalars struct {
	limbs []uint64 // n · ql, flattened
	ql    int      // limbs per scalar
	bits  int      // Q.BitLen()
}

// reduceScalars canonicalizes exps into [0, Q). Exponents already in range
// (the common case: field elements) skip the division.
func (g *Group) reduceScalars(exps []*big.Int) scalars {
	qbits := g.Q.BitLen()
	ql := (qbits + 63) / 64
	sc := scalars{limbs: make([]uint64, len(exps)*ql), ql: ql, bits: qbits}
	var tmp big.Int
	for i, e := range exps {
		if e.Sign() < 0 || e.Cmp(g.Q) >= 0 {
			tmp.Mod(e, g.Q)
			e = &tmp
		}
		copy(sc.limbs[i*ql:], limbsFromBig(e, ql))
	}
	return sc
}

// digit extracts the w-bit window of scalar i starting at bit pos.
func (sc *scalars) digit(i, pos, w int) uint64 {
	limbs := sc.limbs[i*sc.ql : (i+1)*sc.ql]
	idx := pos >> 6
	sh := uint(pos & 63)
	v := limbs[idx] >> sh
	if sh+uint(w) > 64 && idx+1 < len(limbs) {
		v |= limbs[idx+1] << (64 - sh)
	}
	return v & (1<<uint(w) - 1)
}

// pippengerPlan picks the bucket width minimizing the kernel's mult count
// t·(n + 2·2^w + w) for n bases and qbits-bit exponents, and returns the
// minimum so run can weigh it against the signed-digit plan (signed.go).
func pippengerPlan(n, qbits int) (w, cost int) {
	w, cost = 1, int(^uint(0)>>1)
	for cand := 1; cand <= 16; cand++ {
		t := (qbits + cand - 1) / cand
		c := t * (n + 2*(1<<uint(cand)) + cand)
		if c < cost {
			w, cost = cand, c
		}
	}
	return w, cost
}

// strausWindow is the fixed per-base table width of the Straus kernel.
const strausWindow = 4

// strausMaxBases is the auto-selection crossover: below it the Straus
// kernel's per-base tables beat Pippenger's bucket collapse overhead.
const strausMaxBases = 64

// toMontBases converts bases into one flattened Montgomery-domain buffer.
func (k *kernels) toMontBases(bases []*big.Int, t []uint64) []uint64 {
	mn := k.m.n
	out := make([]uint64, len(bases)*mn)
	for i, b := range bases {
		k.m.toMont(out[i*mn:(i+1)*mn], b, t)
	}
	return out
}

// pippenger computes Π bases[i]^exps[i] over the Montgomery-domain bases in
// mb, returning the accumulator in Montgomery form (ok=false: identity).
func (k *kernels) pippenger(mb []uint64, n int, sc *scalars, w int, t []uint64) (acc []uint64, ok bool) {
	m := k.m
	mn := m.n
	nbuckets := 1<<uint(w) - 1
	buckets := make([]uint64, nbuckets*mn)
	stamp := make([]int, nbuckets+1) // stamp[d] == window+1 marks occupancy
	acc = make([]uint64, mn)
	run := make([]uint64, mn)
	sum := make([]uint64, mn)

	nwin := (sc.bits + w - 1) / w
	started := false
	for j := nwin - 1; j >= 0; j-- {
		if started {
			for s := 0; s < w; s++ {
				m.mul(acc, acc, acc, t)
			}
		}
		// Scatter each base into its digit's bucket.
		for i := 0; i < n; i++ {
			d := int(sc.digit(i, j*w, w))
			if d == 0 {
				continue
			}
			b := buckets[(d-1)*mn : d*mn]
			if stamp[d] == j+1 {
				m.mul(b, b, mb[i*mn:(i+1)*mn], t)
			} else {
				copy(b, mb[i*mn:(i+1)*mn])
				stamp[d] = j + 1
			}
		}
		if !k.collapseBuckets(buckets, stamp, j, nbuckets, run, sum, t) {
			continue
		}
		if started {
			m.mul(acc, acc, sum, t)
		} else {
			copy(acc, sum)
			started = true
		}
	}
	return acc, started
}

// collapseBuckets folds the current window's Σ d·B_d into sum using the
// running-product trick (a reverse sweep where run accumulates suffix
// products). Shared by the unsigned and signed bucket kernels; stamp[d] ==
// j+1 marks the buckets this window actually filled. Returns false when the
// window was empty.
func (k *kernels) collapseBuckets(buckets []uint64, stamp []int, j, nbuckets int, run, sum, t []uint64) bool {
	m := k.m
	mn := m.n
	runSet, sumSet := false, false
	for d := nbuckets; d >= 1; d-- {
		if stamp[d] == j+1 {
			b := buckets[(d-1)*mn : d*mn]
			if runSet {
				m.mul(run, run, b, t)
			} else {
				copy(run, b)
				runSet = true
			}
		}
		if !runSet {
			continue
		}
		if sumSet {
			m.mul(sum, sum, run, t)
		} else {
			copy(sum, run)
			sumSet = true
		}
	}
	return sumSet
}

// straus computes the same product with per-base windowed tables and shared
// squarings — cheaper than bucketing for small n.
func (k *kernels) straus(mb []uint64, n int, sc *scalars, t []uint64) (acc []uint64, ok bool) {
	m := k.m
	mn := m.n
	const w = strausWindow
	const tabLen = 1<<w - 1
	// tab[(i·tabLen + d-1)·mn : ...] = bases[i]^d in Montgomery form.
	tab := make([]uint64, n*tabLen*mn)
	for i := 0; i < n; i++ {
		base := mb[i*mn : (i+1)*mn]
		row := tab[i*tabLen*mn:]
		copy(row[:mn], base)
		for d := 2; d <= tabLen; d++ {
			m.mul(row[(d-1)*mn:d*mn], row[(d-2)*mn:(d-1)*mn], base, t)
		}
	}
	acc = make([]uint64, mn)
	nwin := (sc.bits + w - 1) / w
	started := false
	for j := nwin - 1; j >= 0; j-- {
		if started {
			for s := 0; s < w; s++ {
				m.mul(acc, acc, acc, t)
			}
		}
		for i := 0; i < n; i++ {
			d := int(sc.digit(i, j*w, w))
			if d == 0 {
				continue
			}
			e := tab[(i*tabLen+d-1)*mn : (i*tabLen+d)*mn]
			if started {
				m.mul(acc, acc, e, t)
			} else {
				copy(acc, e)
				started = true
			}
		}
	}
	return acc, started
}

type multiExpAlgo int

const (
	algoAuto multiExpAlgo = iota
	algoStraus
	algoPippenger
	algoPippengerSigned
)

// multiExp is the shared serial entry point for the exported variants.
func (g *Group) multiExp(bases []*big.Int, sc *scalars, algo multiExpAlgo) *big.Int {
	if len(bases) == 0 {
		return big.NewInt(1)
	}
	k := g.kern()
	t := k.m.scratch()
	mb := k.toMontBases(bases, t)
	acc, ok := k.run(mb, len(bases), sc, algo, t)
	if !ok {
		return big.NewInt(1)
	}
	return k.m.fromMont(acc, t)
}

// run dispatches one shard to the selected kernel. Under algoAuto the two
// Pippenger variants compete on their cost models; with no cached inverses
// the signed plan carries its batch-inversion surcharge, so it only wins
// where halved buckets genuinely outweigh ~3n extra mults (prepared vectors
// drop that surcharge — see runPrepared in signed.go).
func (k *kernels) run(mb []uint64, n int, sc *scalars, algo multiExpAlgo, t []uint64) ([]uint64, bool) {
	if algo == algoStraus || (algo == algoAuto && n <= strausMaxBases) {
		return k.straus(mb, n, sc, t)
	}
	if algo == algoPippengerSigned {
		return k.runSigned(mb, n, sc, t)
	}
	uw, ucost := pippengerPlan(n, sc.bits)
	if algo == algoAuto {
		if _, scost := pippengerSignedPlan(n, sc.bits, false); scost < ucost {
			return k.runSigned(mb, n, sc, t)
		}
	}
	return k.pippenger(mb, n, sc, uw, t)
}

// recordMultiExp counts one kernel invocation: the plain counters stay the
// aggregate view, while the labeled vector breaks calls out by entry point
// (op ∈ auto, straus, pippenger, signed, parallel, inner_product,
// prepared) so an operator can see which code path drives the kernel load.
func recordMultiExp(op string, n int) obs.Span {
	reg := obs.Default()
	reg.Counter(MetricMultiExpCalls).Inc()
	reg.Counter(MetricMultiExpBases).Add(int64(n))
	reg.CounterVec(MetricMultiExpCalls, "op").With(op).Inc()
	return reg.StartSpan(MetricMultiExpSpan)
}

// MultiExp returns Π bases[i]^exps[i] mod P, selecting the kernel by input
// length. Bases must lie in the order-Q subgroup (every ciphertext component
// and generator power does); exponents may be any non-negative integers and
// are reduced mod Q. It panics on length mismatch, like the field kernels.
func (g *Group) MultiExp(bases, exps []*big.Int) *big.Int {
	if len(bases) != len(exps) {
		panic("elgamal: MultiExp length mismatch")
	}
	defer recordMultiExp("auto", len(bases)).End()
	sc := g.reduceScalars(exps)
	return g.multiExp(bases, &sc, algoAuto)
}

// MultiExpStraus forces the Straus (per-base window table) kernel.
func (g *Group) MultiExpStraus(bases, exps []*big.Int) *big.Int {
	if len(bases) != len(exps) {
		panic("elgamal: MultiExp length mismatch")
	}
	defer recordMultiExp("straus", len(bases)).End()
	sc := g.reduceScalars(exps)
	return g.multiExp(bases, &sc, algoStraus)
}

// MultiExpPippenger forces the Pippenger (bucket) kernel.
func (g *Group) MultiExpPippenger(bases, exps []*big.Int) *big.Int {
	if len(bases) != len(exps) {
		panic("elgamal: MultiExp length mismatch")
	}
	defer recordMultiExp("pippenger", len(bases)).End()
	sc := g.reduceScalars(exps)
	return g.multiExp(bases, &sc, algoPippenger)
}

// MultiExpSigned forces the signed-digit Pippenger kernel (signed.go),
// batch-inverting the bases inline. Exists for the ablation benchmark and
// edge-case tests; production callers reach the signed kernel through auto
// selection or a PreparedVector.
func (g *Group) MultiExpSigned(bases, exps []*big.Int) *big.Int {
	if len(bases) != len(exps) {
		panic("elgamal: MultiExp length mismatch")
	}
	defer recordMultiExp("signed", len(bases)).End()
	sc := g.reduceScalars(exps)
	return g.multiExp(bases, &sc, algoPippengerSigned)
}

// MultiExpNaive is the exp-and-multiply reference the kernels are verified
// and benchmarked against: one full-width modexp per base.
func (g *Group) MultiExpNaive(bases, exps []*big.Int) *big.Int {
	if len(bases) != len(exps) {
		panic("elgamal: MultiExp length mismatch")
	}
	acc := big.NewInt(1)
	tmp := new(big.Int)
	for i := range bases {
		tmp.Exp(bases[i], exps[i], g.P)
		acc.Mul(acc, tmp).Mod(acc, g.P)
	}
	return acc
}

// MultiExpParallel shards the product across workers goroutines, each
// running the auto-selected serial kernel on its slice, and folds the
// partial products. Results are identical to MultiExp for any worker count.
func (g *Group) MultiExpParallel(bases, exps []*big.Int, workers int) *big.Int {
	if len(bases) != len(exps) {
		panic("elgamal: MultiExp length mismatch")
	}
	n := len(bases)
	if workers < 1 {
		workers = 1
	}
	if shards := (n + minShard - 1) / minShard; workers > shards {
		workers = shards
	}
	if workers <= 1 {
		return g.MultiExp(bases, exps)
	}
	defer recordMultiExp("parallel", n).End()
	sc := g.reduceScalars(exps)
	k := g.kern()
	partials := make([][]uint64, workers)
	_ = par.ForEach(context.Background(), workers, workers, func(s int) error {
		lo, hi := n*s/workers, n*(s+1)/workers
		if lo == hi {
			return nil
		}
		t := k.m.scratch()
		mb := k.toMontBases(bases[lo:hi], t)
		sub := scalars{limbs: sc.limbs[lo*sc.ql : hi*sc.ql], ql: sc.ql, bits: sc.bits}
		if acc, ok := k.run(mb, hi-lo, &sub, algoAuto, t); ok {
			partials[s] = acc
		}
		return nil
	})
	acc, ok := k.foldPartials(partials)
	if !ok {
		return big.NewInt(1)
	}
	return k.m.fromMont(acc, k.m.scratch())
}

// minShard is the smallest per-worker slice worth the goroutine handoff.
const minShard = 32

// innerProduct gathers the non-zero-weight ciphertext components and runs
// the two multi-exponentiations (A and B columns) over a shared scalar
// reduction.
func (g *Group) innerProduct(cts []Ciphertext, f *field.Field, u []field.Element, workers int) (Ciphertext, error) {
	if len(cts) != len(u) {
		return Ciphertext{}, errors.New("elgamal: InnerProduct length mismatch")
	}
	as := make([]*big.Int, 0, len(u))
	bs := make([]*big.Int, 0, len(u))
	exps := make([]*big.Int, 0, len(u))
	for i := range u {
		if f.IsZero(u[i]) {
			continue
		}
		as = append(as, cts[i].A)
		bs = append(bs, cts[i].B)
		exps = append(exps, f.ToBig(u[i]))
	}
	if len(exps) == 0 {
		return g.One(), nil
	}
	if workers > 1 {
		return Ciphertext{
			A: g.MultiExpParallel(as, exps, workers),
			B: g.MultiExpParallel(bs, exps, workers),
		}, nil
	}
	defer recordMultiExp("inner_product", 2*len(exps)).End()
	sc := g.reduceScalars(exps)
	return Ciphertext{
		A: g.multiExp(as, &sc, algoAuto),
		B: g.multiExp(bs, &sc, algoAuto),
	}, nil
}
