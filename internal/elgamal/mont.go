package elgamal

import (
	"math/big"
	"math/bits"
)

// montCtx is a variable-length Montgomery multiplication context for the
// group modulus P. The multi-exponentiation and fixed-base kernels do all
// of their group multiplications in the Montgomery domain: one CIOS
// multiply per group mult, instead of big.Int's multiply-then-divide
// (Mul + Mod), and with zero heap allocations in the inner loops — every
// operand lives in caller-provided limb slices.
//
// The context is sized for any odd modulus (production groups are 1024-bit,
// the test groups 256-bit); limbs are little-endian uint64.
type montCtx struct {
	n    int      // limb count of P
	p    []uint64 // modulus
	inv  uint64   // -P⁻¹ mod 2^64
	one  []uint64 // R mod P: Montgomery form of 1
	r2   []uint64 // R² mod P: converts into Montgomery form
	pBig *big.Int

	// fixed selects a constant-width multiplication kernel (montfixed.go)
	// for the production limb counts; 0 runs the variable-width loop. It is
	// decided once here, at construction, so generic widths and -tags
	// purego builds keep working with no per-call probing.
	fixed int
}

func newMontCtx(p *big.Int) *montCtx {
	n := (p.BitLen() + 63) / 64
	m := &montCtx{n: n, pBig: new(big.Int).Set(p)}
	m.p = limbsFromBig(p, n)
	if hasFixedMont && (n == 16 || n == 4) {
		m.fixed = n
	}

	// inv = -p⁻¹ mod 2^64 by Newton iteration (p odd ⇒ p ≡ p⁻¹ mod 2).
	x := m.p[0]
	for i := 0; i < 5; i++ {
		x *= 2 - m.p[0]*x
	}
	m.inv = -x

	r := new(big.Int).Lsh(big.NewInt(1), uint(64*n))
	r.Mod(r, p)
	m.one = limbsFromBig(r, n)
	r2 := new(big.Int).Lsh(big.NewInt(1), uint(2*64*n))
	r2.Mod(r2, p)
	m.r2 = limbsFromBig(r2, n)
	return m
}

// limbsFromBig returns v as n little-endian limbs; v must be in [0, 2^(64n)).
func limbsFromBig(v *big.Int, n int) []uint64 {
	buf := make([]byte, n*8)
	v.FillBytes(buf)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		b := buf[(n-1-i)*8:]
		out[i] = uint64(b[7]) | uint64(b[6])<<8 | uint64(b[5])<<16 | uint64(b[4])<<24 |
			uint64(b[3])<<32 | uint64(b[2])<<40 | uint64(b[1])<<48 | uint64(b[0])<<56
	}
	return out
}

// bigFromLimbs converts little-endian limbs back to a big.Int.
func bigFromLimbs(a []uint64) *big.Int {
	buf := make([]byte, len(a)*8)
	for i, v := range a {
		b := buf[(len(a)-1-i)*8:]
		b[0] = byte(v >> 56)
		b[1] = byte(v >> 48)
		b[2] = byte(v >> 40)
		b[3] = byte(v >> 32)
		b[4] = byte(v >> 24)
		b[5] = byte(v >> 16)
		b[6] = byte(v >> 8)
		b[7] = byte(v)
	}
	return new(big.Int).SetBytes(buf)
}

// madd2m returns a·b + t + c as (hi, lo); cannot overflow 128 bits.
func madd2m(a, b, t, c uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, t, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// scratch returns a scratch slice sized for mul.
func (m *montCtx) scratch() []uint64 { return make([]uint64, m.n+2) }

// mul sets dst = a·b·R⁻¹ mod P (the Montgomery product). dst may alias a or
// b; t is scratch of length n+2. The production widths (16-limb groups,
// 4-limb test groups) run the constant-width kernels selected at
// construction; everything else takes the variable-width CIOS loop.
func (m *montCtx) mul(dst, a, b, t []uint64) {
	switch m.fixed {
	case 16:
		mulMont16((*[16]uint64)(m.p), m.inv, (*[16]uint64)(dst), (*[16]uint64)(a), (*[16]uint64)(b))
		return
	case 4:
		mulMont4((*[4]uint64)(m.p), m.inv, (*[4]uint64)(dst), (*[4]uint64)(a), (*[4]uint64)(b))
		return
	}
	m.mulGeneric(dst, a, b, t)
}

// mulGeneric is the variable-width CIOS loop with s+2 working words.
func (m *montCtx) mulGeneric(dst, a, b, t []uint64) {
	n := m.n
	for i := range t {
		t[i] = 0
	}
	for i := 0; i < n; i++ {
		// t += a · b[i]
		var c uint64
		bi := b[i]
		for j := 0; j < n; j++ {
			c, t[j] = madd2m(a[j], bi, t[j], c)
		}
		var cr uint64
		t[n], cr = bits.Add64(t[n], c, 0)
		t[n+1] = cr

		// Montgomery step: add mu·P so t ≡ 0 mod 2^64, shift one word.
		mu := t[0] * m.inv
		c, _ = madd2m(mu, m.p[0], t[0], 0)
		for j := 1; j < n; j++ {
			c, t[j-1] = madd2m(mu, m.p[j], t[j], c)
		}
		t[n-1], cr = bits.Add64(t[n], c, 0)
		t[n] = t[n+1] + cr
		t[n+1] = 0
	}
	// The result is < 2P; subtract P once if it overflowed 2^(64n) or is ≥ P.
	if t[n] != 0 || !lessThan(t[:n], m.p) {
		var bw uint64
		for j := 0; j < n; j++ {
			dst[j], bw = bits.Sub64(t[j], m.p[j], bw)
		}
		return
	}
	copy(dst, t[:n])
}

// lessThan reports a < b for equal-length little-endian limbs.
func lessThan(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// toMont sets dst to the Montgomery form of v (a canonical residue mod P).
func (m *montCtx) toMont(dst []uint64, v *big.Int, t []uint64) {
	raw := limbsFromBig(v, m.n)
	m.mul(dst, raw, m.r2, t)
}

// fromMont converts a out of Montgomery form and returns it as a big.Int.
func (m *montCtx) fromMont(a []uint64, t []uint64) *big.Int {
	oneRaw := make([]uint64, m.n)
	oneRaw[0] = 1
	out := make([]uint64, m.n)
	m.mul(out, a, oneRaw, t)
	return bigFromLimbs(out)
}

// batchInv inverts every Montgomery-domain element of src (n-limb each,
// flattened) into dst using Montgomery's trick: one modular inversion plus
// 3(k-1)+2 multiplications for k elements. This is what makes signed-digit
// multiexp windows affordable in a Z_P* group, where a per-base inversion
// would otherwise cost a full extended GCD each. dst must not alias src; it
// panics on a non-invertible (≡ 0 mod P) input, which in this package always
// indicates a protocol bug.
func (m *montCtx) batchInv(dst, src []uint64, t []uint64) {
	mn := m.n
	k := len(src) / mn
	if k == 0 {
		return
	}
	prefix := make([]uint64, len(src))
	acc := make([]uint64, mn)
	copy(acc, m.one)
	for i := 0; i < k; i++ {
		copy(prefix[i*mn:(i+1)*mn], acc)
		m.mul(acc, acc, src[i*mn:(i+1)*mn], t)
	}
	inv := m.fromMont(acc, t)
	if inv.ModInverse(inv, m.pBig) == nil {
		panic("elgamal: batchInv of non-invertible element")
	}
	m.toMont(acc, inv, t)
	for i := k - 1; i >= 0; i-- {
		m.mul(dst[i*mn:(i+1)*mn], acc, prefix[i*mn:(i+1)*mn], t)
		m.mul(acc, acc, src[i*mn:(i+1)*mn], t)
	}
}
