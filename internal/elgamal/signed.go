package elgamal

import (
	"context"
	"errors"
	"math/big"

	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/par"
)

// Signed-digit (wNAF-style) Pippenger. Recoding each w-bit window digit
// d ∈ [0, 2^w) into a signed digit in [-2^(w-1), 2^(w-1)] halves the bucket
// count per window, at the price of one extra carry window and access to the
// base inverses. In Z_P* an inverse is a full extended GCD, so the kernel
// never inverts per base: a single Montgomery batch inversion (mont.go)
// covers the whole vector in ~3n multiplications, and PreparedVector caches
// it across every inner product a commit batch runs against the same Enc(r).
const (
	// MetricMultiExpSigned counts kernel invocations that took the
	// signed-digit Pippenger path.
	MetricMultiExpSigned = "elgamal.multiexp.signed"
	// MetricPreparedVectors counts PreparedVector builds.
	MetricPreparedVectors = "elgamal.multiexp.prepared"
)

// pippengerSignedPlan picks the width minimizing the signed kernel's mult
// count t·(n + 2·2^(w-1) + w) over t = ⌈qbits/w⌉+1 windows (the +1 is the
// carry window). When the inverses are not already cached the batch
// inversion adds 3n mults plus one extended GCD, costed here at 64 mults.
func pippengerSignedPlan(n, qbits int, haveInv bool) (w, cost int) {
	w, cost = 1, int(^uint(0)>>1)
	for cand := 1; cand <= 16; cand++ {
		t := (qbits+cand-1)/cand + 1
		c := t * (n + 2*(1<<uint(cand-1)) + cand)
		if !haveInv {
			c += 3*n + 64
		}
		if c < cost {
			w, cost = cand, c
		}
	}
	return w, cost
}

// signedDigits returns the w-bit signed-digit decomposition of every scalar,
// flattened: nwin digits per scalar, least significant first, each in
// [-(2^(w-1)-1), 2^(w-1)]. The value is preserved exactly: Σ d_j·2^(jw)
// equals the scalar, with the final digit absorbing the last carry (0 or 1).
func (sc *scalars) signedDigits(w int) (digits []int32, nwin int) {
	nwin = (sc.bits+w-1)/w + 1
	n := len(sc.limbs) / sc.ql
	digits = make([]int32, n*nwin)
	half := int64(1) << uint(w-1)
	full := int64(1) << uint(w)
	for i := 0; i < n; i++ {
		row := digits[i*nwin:]
		carry := int64(0)
		for j := 0; j < nwin-1; j++ {
			d := int64(sc.digit(i, j*w, w)) + carry
			carry = 0
			if d > half {
				d -= full
				carry = 1
			}
			row[j] = int32(d)
		}
		row[nwin-1] = int32(carry)
	}
	return digits, nwin
}

// pippengerSigned is the signed-digit bucket kernel: 2^(w-1) buckets per
// window, with negative digits scattering the precomputed base inverse
// instead of the base. mb and inv are flattened Montgomery-domain bases and
// their inverses; digits comes from signedDigits with the same w.
func (k *kernels) pippengerSigned(mb, inv []uint64, n int, digits []int32, nwin, w int, t []uint64) (acc []uint64, ok bool) {
	m := k.m
	mn := m.n
	nbuckets := 1 << uint(w-1)
	buckets := make([]uint64, nbuckets*mn)
	stamp := make([]int, nbuckets+1)
	acc = make([]uint64, mn)
	run := make([]uint64, mn)
	sum := make([]uint64, mn)
	started := false
	for j := nwin - 1; j >= 0; j-- {
		if started {
			for s := 0; s < w; s++ {
				m.mul(acc, acc, acc, t)
			}
		}
		for i := 0; i < n; i++ {
			d := int(digits[i*nwin+j])
			if d == 0 {
				continue
			}
			src := mb
			if d < 0 {
				src, d = inv, -d
			}
			b := buckets[(d-1)*mn : d*mn]
			if stamp[d] == j+1 {
				m.mul(b, b, src[i*mn:(i+1)*mn], t)
			} else {
				copy(b, src[i*mn:(i+1)*mn])
				stamp[d] = j + 1
			}
		}
		if !k.collapseBuckets(buckets, stamp, j, nbuckets, run, sum, t) {
			continue
		}
		if started {
			m.mul(acc, acc, sum, t)
		} else {
			copy(acc, sum)
			started = true
		}
	}
	return acc, started
}

// runSigned feeds one shard through the signed kernel, batch-inverting the
// bases inline. The prepared path (runPrepared) skips the inversion. A base
// ≡ 0 mod P has no inverse, so such shards fall back to the unsigned bucket
// kernel, which absorbs zeros natively — the exported MultiExp entry points
// stay total over degenerate bases instead of panicking in batchInv.
func (k *kernels) runSigned(mb []uint64, n int, sc *scalars, t []uint64) ([]uint64, bool) {
	mn := k.m.n
	for i := 0; i < n; i++ {
		if limbsZero(mb[i*mn : (i+1)*mn]) {
			w, _ := pippengerPlan(n, sc.bits)
			return k.pippenger(mb, n, sc, w, t)
		}
	}
	obs.Default().Counter(MetricMultiExpSigned).Inc()
	inv := make([]uint64, len(mb))
	k.m.batchInv(inv, mb, t)
	w, _ := pippengerSignedPlan(n, sc.bits, false)
	digits, nwin := sc.signedDigits(w)
	return k.pippengerSigned(mb, inv, n, digits, nwin, w, t)
}

// runPrepared dispatches one shard whose bases arrive with cached inverses:
// the signed kernel competes against unsigned Pippenger on bucket count
// alone, so it wins whenever the window is wide enough to matter.
func (k *kernels) runPrepared(mb, inv []uint64, n int, sc *scalars, t []uint64) ([]uint64, bool) {
	if n <= strausMaxBases {
		return k.straus(mb, n, sc, t)
	}
	uw, ucost := pippengerPlan(n, sc.bits)
	sw, scost := pippengerSignedPlan(n, sc.bits, true)
	if scost < ucost {
		obs.Default().Counter(MetricMultiExpSigned).Inc()
		digits, nwin := sc.signedDigits(sw)
		return k.pippengerSigned(mb, inv, n, digits, nwin, sw, t)
	}
	return k.pippenger(mb, n, sc, uw, t)
}

// limbsZero reports whether every limb of a is zero — the (canonical)
// Montgomery form of 0.
func limbsZero(a []uint64) bool {
	for _, v := range a {
		if v != 0 {
			return false
		}
	}
	return true
}

// PreparedVector is a ciphertext vector fixed for many inner products: the
// commit phase evaluates every instance's proof vector against the same
// Enc(r), so the Montgomery conversion of both components and the batch
// inversion backing signed windows are paid once here instead of per call.
// It is immutable after Prepare and safe for concurrent use.
type PreparedVector struct {
	g          *Group
	n          int
	mbA, mbB   []uint64 // Montgomery-domain A and B components, flattened
	invA, invB []uint64 // their inverses, for signed-digit windows
}

// Len returns the number of ciphertexts prepared.
func (pv *PreparedVector) Len() int { return pv.n }

// Prepare builds the cached Montgomery preparation of cts. Components must
// be nonzero mod P (every Encrypt output is); it panics otherwise, like the
// kernels do on malformed protocol state. Callers holding wire-supplied
// ciphertexts must screen them with CheckCiphertexts first.
func (g *Group) Prepare(cts []Ciphertext) *PreparedVector {
	obs.Default().Counter(MetricPreparedVectors).Inc()
	k := g.kern()
	t := k.m.scratch()
	mn := k.m.n
	pv := &PreparedVector{g: g, n: len(cts)}
	pv.mbA = make([]uint64, len(cts)*mn)
	pv.mbB = make([]uint64, len(cts)*mn)
	for i, ct := range cts {
		k.m.toMont(pv.mbA[i*mn:(i+1)*mn], ct.A, t)
		k.m.toMont(pv.mbB[i*mn:(i+1)*mn], ct.B, t)
	}
	pv.invA = make([]uint64, len(cts)*mn)
	pv.invB = make([]uint64, len(cts)*mn)
	k.m.batchInv(pv.invA, pv.mbA, t)
	k.m.batchInv(pv.invB, pv.mbB, t)
	return pv
}

// InnerProductPrepared is InnerProduct against a prepared vector: no
// per-call Montgomery conversion, and signed-digit windows at no inversion
// cost. Zero weights are not compacted — their digits are all zero, so the
// scatter loops skip them — and results match InnerProduct exactly for
// every worker count.
func (g *Group) InnerProductPrepared(pv *PreparedVector, f *field.Field, u []field.Element, workers int) (Ciphertext, error) {
	if pv == nil || pv.g != g {
		return Ciphertext{}, errors.New("elgamal: prepared vector belongs to a different group")
	}
	if pv.n != len(u) {
		return Ciphertext{}, errors.New("elgamal: InnerProduct length mismatch")
	}
	if pv.n == 0 {
		return g.One(), nil
	}
	defer recordMultiExp("prepared", 2*pv.n).End()
	exps := make([]*big.Int, len(u))
	for i := range u {
		exps[i] = f.ToBig(u[i])
	}
	sc := g.reduceScalars(exps)
	k := g.kern()
	t := k.m.scratch()
	out := g.One()
	if acc, ok := k.multiExpPrepared(pv.mbA, pv.invA, pv.n, &sc, workers); ok {
		out.A = k.m.fromMont(acc, t)
	}
	if acc, ok := k.multiExpPrepared(pv.mbB, pv.invB, pv.n, &sc, workers); ok {
		out.B = k.m.fromMont(acc, t)
	}
	return out, nil
}

// multiExpPrepared shards a prepared multi-exponentiation over workers
// goroutines and folds the partial products, mirroring MultiExpParallel.
func (k *kernels) multiExpPrepared(mb, inv []uint64, n int, sc *scalars, workers int) ([]uint64, bool) {
	mn := k.m.n
	if workers < 1 {
		workers = 1
	}
	if shards := (n + minShard - 1) / minShard; workers > shards {
		workers = shards
	}
	if workers <= 1 {
		return k.runPrepared(mb, inv, n, sc, k.m.scratch())
	}
	partials := make([][]uint64, workers)
	_ = par.ForEach(context.Background(), workers, workers, func(s int) error {
		lo, hi := n*s/workers, n*(s+1)/workers
		if lo == hi {
			return nil
		}
		sub := scalars{limbs: sc.limbs[lo*sc.ql : hi*sc.ql], ql: sc.ql, bits: sc.bits}
		if acc, ok := k.runPrepared(mb[lo*mn:hi*mn], inv[lo*mn:hi*mn], hi-lo, &sub, k.m.scratch()); ok {
			partials[s] = acc
		}
		return nil
	})
	return k.foldPartials(partials)
}

// foldPartials multiplies per-shard accumulators into one Montgomery-domain
// product; ok=false when every shard was empty (the identity).
func (k *kernels) foldPartials(partials [][]uint64) ([]uint64, bool) {
	t := k.m.scratch()
	var acc []uint64
	for _, p := range partials {
		if p == nil {
			continue
		}
		if acc == nil {
			acc = make([]uint64, k.m.n)
			copy(acc, p)
			continue
		}
		k.m.mul(acc, acc, p, t)
	}
	return acc, acc != nil
}
