package elgamal

import (
	"math/big"
	"sync"

	"zaatar/internal/obs"
)

// FixedBaseTable is a windowed precomputation for repeated exponentiation
// of one fixed base: entries[j][d] = base^(d·2^(w·j)) in Montgomery form,
// for every w-bit digit d and window j. One exponentiation then costs at
// most ceil(qbits/w) − 1 group mults and no squarings — roughly an order of
// magnitude under a generic modexp. The verifier's per-batch EncryptVector
// (three fixed-base powers per element: g^k, h^k, g^m) and the consistency
// check's g^m evaluations are the consumers.
type FixedBaseTable struct {
	g       *Group
	m       *montCtx
	w       int      // window width in bits
	nwin    int      // ceil(qbits / w)
	entries []uint64 // nwin · (2^w − 1) · mn limbs
}

// fixedBaseWindow is the table window width: 43 windows of 6 bits for a
// 254-bit subgroup order, ~350 KB per table at 1024-bit P, amortizing its
// build cost (~2.7k mults) after roughly nine exponentiations.
const fixedBaseWindow = 6

// tableCacheCap bounds the per-Group table cache. Each batch key brings one
// fresh H; the generator table is a permanent resident in practice.
const tableCacheCap = 8

// tableEntry is one MRU cache slot; once guards the build so concurrent
// encryptors share a single construction.
type tableEntry struct {
	base *big.Int
	once sync.Once
	tab  *FixedBaseTable
}

// FixedBase returns the (cached) fixed-base table for base, which must lie
// in the order-Q subgroup. Tables are built once per Group and shared; the
// cache keeps the most recently used tableCacheCap bases.
func (g *Group) FixedBase(base *big.Int) *FixedBaseTable {
	k := g.kern()
	k.mu.Lock()
	var e *tableEntry
	for i, cand := range k.tables {
		if cand.base.Cmp(base) == 0 {
			e = cand
			// Move to front (MRU).
			copy(k.tables[1:i+1], k.tables[:i])
			k.tables[0] = e
			break
		}
	}
	if e == nil {
		e = &tableEntry{base: new(big.Int).Set(base)}
		k.tables = append(k.tables, nil)
		copy(k.tables[1:], k.tables[:len(k.tables)-1])
		k.tables[0] = e
		if len(k.tables) > tableCacheCap {
			k.tables = k.tables[:tableCacheCap]
		}
	}
	k.mu.Unlock()
	e.once.Do(func() { e.tab = newFixedBaseTable(g, e.base) })
	return e.tab
}

// GeneratorTable returns the fixed-base table for the group generator G.
func (g *Group) GeneratorTable() *FixedBaseTable { return g.FixedBase(g.G) }

// newFixedBaseTable builds the table: within window j the entries are a
// running product by base^(2^(w·j)), and the next window's base power is
// one more multiplication ((2^w−1)+1 = 2^w).
func newFixedBaseTable(g *Group, base *big.Int) *FixedBaseTable {
	k := g.kern()
	m := k.m
	mn := m.n
	w := fixedBaseWindow
	qbits := g.Q.BitLen()
	nwin := (qbits + w - 1) / w
	tabLen := 1<<uint(w) - 1

	tb := &FixedBaseTable{g: g, m: m, w: w, nwin: nwin, entries: make([]uint64, nwin*tabLen*mn)}
	t := m.scratch()
	cur := make([]uint64, mn)
	m.toMont(cur, new(big.Int).Mod(base, g.P), t)
	for j := 0; j < nwin; j++ {
		row := tb.entries[j*tabLen*mn:]
		copy(row[:mn], cur)
		for d := 2; d <= tabLen; d++ {
			m.mul(row[(d-1)*mn:d*mn], row[(d-2)*mn:(d-1)*mn], cur, t)
		}
		if j+1 < nwin {
			m.mul(cur, row[(tabLen-1)*mn:tabLen*mn], cur, t)
		}
	}
	obs.Default().Counter(MetricFixedBaseTables).Inc()
	return tb
}

// accMont multiplies base^e into dst in Montgomery form, where e is given
// as reduced little-endian limbs; started reports whether dst already holds
// a value, and the return value is the updated flag (false: identity so
// far). Chaining two walks into one accumulator — h^k then g^m — is how
// batch encryption forms B = h^k·g^m without leaving the Montgomery domain.
func (tb *FixedBaseTable) accMont(dst, elimbs []uint64, started bool, t []uint64) bool {
	m := tb.m
	mn := m.n
	tabLen := 1<<uint(tb.w) - 1
	s := scalars{limbs: elimbs, ql: len(elimbs), bits: tb.g.Q.BitLen()}
	for j := 0; j < tb.nwin; j++ {
		d := int(s.digit(0, j*tb.w, tb.w))
		if d == 0 {
			continue
		}
		e := tb.entries[(j*tabLen+d-1)*mn : (j*tabLen+d)*mn]
		if started {
			m.mul(dst, dst, e, t)
		} else {
			copy(dst, e)
			started = true
		}
	}
	return started
}

// Exp returns base^e mod P. Exponents are reduced mod Q (the base has
// order Q), so any non-negative e — including values at or above the
// subgroup order — matches the generic modexp on a subgroup element.
func (tb *FixedBaseTable) Exp(e *big.Int) *big.Int {
	obs.Default().Counter(MetricFixedBaseExps).Inc()
	g := tb.g
	if e.Sign() < 0 || e.Cmp(g.Q) >= 0 {
		e = new(big.Int).Mod(e, g.Q)
	}
	m := tb.m
	ql := (g.Q.BitLen() + 63) / 64
	t := m.scratch()
	dst := make([]uint64, m.n)
	if !tb.accMont(dst, limbsFromBig(e, ql), false, t) {
		return big.NewInt(1)
	}
	return m.fromMont(dst, t)
}
