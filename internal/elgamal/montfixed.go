//go:build !purego

package elgamal

import "math/bits"

// hasFixedMont reports whether this build carries the constant-width
// Montgomery multiplication paths for the production limb counts (16-limb
// 1024-bit groups; 4-limb 256-bit test groups). newMontCtx consults it once
// per context, so `-tags purego` builds prove the variable-width loop still
// carries the whole protocol.
const hasFixedMont = true

// The fixed-width kernels mirror the generic CIOS loop in mont.go but run
// over array pointers with constant trip counts: the compiler drops every
// bounds check and slice-header load, which is where the variable-width loop
// loses on the multiexp hot path. dst may alias a or b — it is written only
// after the last read of either.

func mulMont16(p *[16]uint64, inv uint64, dst, a, b *[16]uint64) {
	const n = 16
	var t [n + 2]uint64
	for i := 0; i < n; i++ {
		var c uint64
		bi := b[i]
		// Inner loops unrolled ×4: the madd chains are carry-serial, so
		// the only headroom left is loop control, which at 16 limbs is a
		// measurable slice of each 8-instruction body.
		for j := 0; j < n; j += 4 {
			c, t[j] = madd2m(a[j], bi, t[j], c)
			c, t[j+1] = madd2m(a[j+1], bi, t[j+1], c)
			c, t[j+2] = madd2m(a[j+2], bi, t[j+2], c)
			c, t[j+3] = madd2m(a[j+3], bi, t[j+3], c)
		}
		var cr uint64
		t[n], cr = bits.Add64(t[n], c, 0)
		t[n+1] = cr
		mu := t[0] * inv
		c, _ = madd2m(mu, p[0], t[0], 0)
		c, t[0] = madd2m(mu, p[1], t[1], c)
		c, t[1] = madd2m(mu, p[2], t[2], c)
		c, t[2] = madd2m(mu, p[3], t[3], c)
		for j := 4; j < n; j += 4 {
			c, t[j-1] = madd2m(mu, p[j], t[j], c)
			c, t[j] = madd2m(mu, p[j+1], t[j+1], c)
			c, t[j+1] = madd2m(mu, p[j+2], t[j+2], c)
			c, t[j+2] = madd2m(mu, p[j+3], t[j+3], c)
		}
		t[n-1], cr = bits.Add64(t[n], c, 0)
		t[n] = t[n+1] + cr
		t[n+1] = 0
	}
	// Result < 2P; subtract P once if it overflowed 2^(64n) or is ≥ P.
	ge := t[n] != 0
	if !ge {
		ge = true // t == p counts as ≥
		for i := n - 1; i >= 0; i-- {
			if t[i] != p[i] {
				ge = t[i] > p[i]
				break
			}
		}
	}
	if !ge {
		*dst = *(*[n]uint64)(t[:n])
		return
	}
	var bw uint64
	for j := 0; j < n; j++ {
		dst[j], bw = bits.Sub64(t[j], p[j], bw)
	}
}

func mulMont4(p *[4]uint64, inv uint64, dst, a, b *[4]uint64) {
	const n = 4
	var t [n + 2]uint64
	for i := 0; i < n; i++ {
		var c uint64
		bi := b[i]
		for j := 0; j < n; j++ {
			c, t[j] = madd2m(a[j], bi, t[j], c)
		}
		var cr uint64
		t[n], cr = bits.Add64(t[n], c, 0)
		t[n+1] = cr
		mu := t[0] * inv
		c, _ = madd2m(mu, p[0], t[0], 0)
		for j := 1; j < n; j++ {
			c, t[j-1] = madd2m(mu, p[j], t[j], c)
		}
		t[n-1], cr = bits.Add64(t[n], c, 0)
		t[n] = t[n+1] + cr
		t[n+1] = 0
	}
	ge := t[n] != 0
	if !ge {
		ge = true
		for i := n - 1; i >= 0; i-- {
			if t[i] != p[i] {
				ge = t[i] > p[i]
				break
			}
		}
	}
	if !ge {
		*dst = *(*[n]uint64)(t[:n])
		return
	}
	var bw uint64
	for j := 0; j < n; j++ {
		dst[j], bw = bits.Sub64(t[j], p[j], bw)
	}
}
