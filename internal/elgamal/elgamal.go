// Package elgamal implements additively homomorphic (exponent) ElGamal
// encryption over a Schnorr group: a prime-order-q subgroup of Z_P* where q
// is exactly the PCP field modulus.
//
// This is the encryption used by the linear commitment protocol (Figure 2;
// §2.2 "Linear commitment"): the verifier encrypts a secret vector r, the
// prover homomorphically evaluates its linear proof function π on the
// ciphertexts, and the verifier decrypts g^{π(r)} — it never needs π(r)
// itself, only its fingerprint in the exponent, so no discrete log is taken.
// Choosing the subgroup order equal to the field modulus makes exponent
// arithmetic coincide with field arithmetic (the Pepper construction [52]).
//
// The paper uses ElGamal with 1024-bit keys (§5.1); the production groups
// here are 1024-bit primes P = k·q + 1 for each field, generated offline and
// verified by the package tests.
package elgamal

import (
	"errors"
	"io"
	"math/big"

	"zaatar/internal/field"
)

// Group describes a prime-order subgroup of Z_P*.
type Group struct {
	P *big.Int // group prime modulus
	G *big.Int // generator of the order-q subgroup
	Q *big.Int // subgroup order = PCP field modulus
}

// PublicKey is an ElGamal public key h = g^x.
type PublicKey struct {
	Group *Group
	H     *big.Int
}

// SecretKey holds the decryption exponent.
type SecretKey struct {
	PublicKey
	X *big.Int
}

// Ciphertext is an exponent-ElGamal ciphertext (A, B) = (g^k, h^k·g^m),
// encrypting the field element m in the exponent.
type Ciphertext struct {
	A, B *big.Int
}

// GenerateKey produces a key pair for the group using randomness from rnd.
func (g *Group) GenerateKey(rnd io.Reader) (*SecretKey, error) {
	x, err := randExponent(g.Q, rnd)
	if err != nil {
		return nil, err
	}
	h := new(big.Int).Exp(g.G, x, g.P)
	return &SecretKey{PublicKey: PublicKey{Group: g, H: h}, X: x}, nil
}

// randExponent returns a uniform value in [1, q).
func randExponent(q *big.Int, rnd io.Reader) (*big.Int, error) {
	nbytes := (q.BitLen() + 7) / 8
	buf := make([]byte, nbytes)
	shift := uint(nbytes*8 - q.BitLen())
	for {
		if _, err := io.ReadFull(rnd, buf); err != nil {
			return nil, err
		}
		v := new(big.Int).SetBytes(buf)
		v.Rsh(v, shift)
		if v.Sign() > 0 && v.Cmp(q) < 0 {
			return v, nil
		}
	}
}

// Encrypt encrypts the field element m (in the exponent).
func (pk *PublicKey) Encrypt(f *field.Field, m field.Element, rnd io.Reader) (Ciphertext, error) {
	k, err := randExponent(pk.Group.Q, rnd)
	if err != nil {
		return Ciphertext{}, err
	}
	P := pk.Group.P
	a := new(big.Int).Exp(pk.Group.G, k, P)
	b := new(big.Int).Exp(pk.H, k, P)
	gm := new(big.Int).Exp(pk.Group.G, f.ToBig(m), P)
	b.Mul(b, gm).Mod(b, P)
	return Ciphertext{A: a, B: b}, nil
}

// EncryptVector encrypts each element of v.
func (pk *PublicKey) EncryptVector(f *field.Field, v []field.Element, rnd io.Reader) ([]Ciphertext, error) {
	out := make([]Ciphertext, len(v))
	for i := range v {
		ct, err := pk.Encrypt(f, v[i], rnd)
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// DecryptExp decrypts to g^m mod P (the message stays in the exponent).
func (sk *SecretKey) DecryptExp(ct Ciphertext) *big.Int {
	P := sk.Group.P
	// B · A^{-x} = g^m
	ax := new(big.Int).Exp(ct.A, sk.X, P)
	ax.ModInverse(ax, P)
	out := new(big.Int).Mul(ct.B, ax)
	return out.Mod(out, P)
}

// ExpOfField returns g^m mod P for a field element m — what DecryptExp would
// yield for a correct encryption of m.
func (g *Group) ExpOfField(f *field.Field, m field.Element) *big.Int {
	return new(big.Int).Exp(g.G, f.ToBig(m), g.P)
}

// One returns the ciphertext-neutral element Enc(0) with zero randomness —
// valid as an accumulator seed for homomorphic sums.
func (g *Group) One() Ciphertext {
	return Ciphertext{A: big.NewInt(1), B: big.NewInt(1)}
}

// Add returns a ciphertext encrypting m1 + m2.
func (g *Group) Add(c1, c2 Ciphertext) Ciphertext {
	a := new(big.Int).Mul(c1.A, c2.A)
	a.Mod(a, g.P)
	b := new(big.Int).Mul(c1.B, c2.B)
	b.Mod(b, g.P)
	return Ciphertext{A: a, B: b}
}

// ScalarMul returns a ciphertext encrypting s·m.
func (g *Group) ScalarMul(c Ciphertext, f *field.Field, s field.Element) Ciphertext {
	e := f.ToBig(s)
	return Ciphertext{
		A: new(big.Int).Exp(c.A, e, g.P),
		B: new(big.Int).Exp(c.B, e, g.P),
	}
}

// InnerProduct homomorphically computes Enc(Σ u_i·m_i) from Enc(m_i) and
// plaintext weights u. This is the prover's commitment evaluation — the
// (h·|u|) term in Figure 3's "Issue responses" row. Zero weights are
// skipped, which matters for sparse proof vectors.
func (g *Group) InnerProduct(cts []Ciphertext, f *field.Field, u []field.Element) (Ciphertext, error) {
	if len(cts) != len(u) {
		return Ciphertext{}, errors.New("elgamal: InnerProduct length mismatch")
	}
	acc := g.One()
	for i := range u {
		if f.IsZero(u[i]) {
			continue
		}
		acc = g.Add(acc, g.ScalarMul(cts[i], f, u[i]))
	}
	return acc, nil
}

// GenerateGroup searches for a prime P = k·q + 1 with the given bit length
// and a generator of the order-q subgroup. It is used by tests with small
// fields; the production groups are compiled in (see params.go).
func GenerateGroup(q *big.Int, bitLen int, rnd io.Reader) (*Group, error) {
	if bitLen <= q.BitLen()+8 {
		return nil, errors.New("elgamal: group size too close to subgroup order")
	}
	one := big.NewInt(1)
	kbits := bitLen - q.BitLen()
	kbuf := make([]byte, (kbits+7)/8)
	for tries := 0; tries < 200000; tries++ {
		if _, err := io.ReadFull(rnd, kbuf); err != nil {
			return nil, err
		}
		k := new(big.Int).SetBytes(kbuf)
		k.SetBit(k, kbits-1, 1)
		if k.Bit(0) == 1 {
			k.Add(k, one)
		}
		P := new(big.Int).Mul(k, q)
		P.Add(P, one)
		if P.BitLen() != bitLen || !P.ProbablyPrime(20) {
			continue
		}
		for h := int64(2); h < 1000; h++ {
			g := new(big.Int).Exp(big.NewInt(h), k, P)
			if g.Cmp(one) != 0 {
				return &Group{P: P, G: g, Q: new(big.Int).Set(q)}, nil
			}
		}
	}
	return nil, errors.New("elgamal: no group found")
}
