// Package elgamal implements additively homomorphic (exponent) ElGamal
// encryption over a Schnorr group: a prime-order-q subgroup of Z_P* where q
// is exactly the PCP field modulus.
//
// This is the encryption used by the linear commitment protocol (Figure 2;
// §2.2 "Linear commitment"): the verifier encrypts a secret vector r, the
// prover homomorphically evaluates its linear proof function π on the
// ciphertexts, and the verifier decrypts g^{π(r)} — it never needs π(r)
// itself, only its fingerprint in the exponent, so no discrete log is taken.
// Choosing the subgroup order equal to the field modulus makes exponent
// arithmetic coincide with field arithmetic (the Pepper construction [52]).
//
// The paper uses ElGamal with 1024-bit keys (§5.1); the production groups
// here are 1024-bit primes P = k·q + 1 for each field, generated offline and
// verified by the package tests.
package elgamal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/par"
)

// Group describes a prime-order subgroup of Z_P*.
//
// A Group also owns lazily-built kernel state (a Montgomery context for P
// and a fixed-base table cache; see multiexp.go and table.go). The state is
// unexported, so gob-transported Groups (transport.Hello carries one inside
// the commit request's public key) arrive empty and rebuild it on first
// use. Groups must not be copied by value once in use.
type Group struct {
	P *big.Int // group prime modulus
	G *big.Int // generator of the order-q subgroup
	Q *big.Int // subgroup order = PCP field modulus

	konce   sync.Once
	kernels *kernels
}

// Validate sanity-checks a Group that arrived from an untrusted peer (gob
// decodes only the exported P, G, Q). It rejects shapes that would corrupt
// or crash the Montgomery kernels: nil or non-positive parameters, an even
// modulus, or a subgroup order not strictly inside (1, P). It does not
// verify primality or subgroup membership — the commitment protocol's
// soundness never depends on the prover checking those, only the kernels'
// preconditions do.
func (g *Group) Validate() error {
	if g == nil || g.P == nil || g.G == nil || g.Q == nil {
		return errors.New("elgamal: group with nil parameters")
	}
	if g.P.Sign() <= 0 || g.P.Bit(0) == 0 {
		return errors.New("elgamal: group modulus must be odd and positive")
	}
	two := big.NewInt(2)
	if g.Q.Cmp(two) < 0 || g.Q.Cmp(g.P) >= 0 {
		return errors.New("elgamal: subgroup order out of range")
	}
	if g.G.Cmp(two) < 0 || g.G.Cmp(g.P) >= 0 {
		return errors.New("elgamal: generator out of range")
	}
	return nil
}

// CheckCiphertexts verifies that every component of cts is a canonical
// nonzero residue mod P — the kernels' precondition: a component ≡ 0 mod P
// has no inverse for the signed-digit windows (Prepare would panic in the
// batch inversion), and an out-of-range value overflows the fixed-width limb
// encoding. Honest Encrypt output always passes; servers call this on
// wire-supplied vectors before Prepare so a malicious ciphertext surfaces as
// a protocol error instead of a panic.
func (g *Group) CheckCiphertexts(cts []Ciphertext) error {
	for i := range cts {
		for _, c := range [...]*big.Int{cts[i].A, cts[i].B} {
			if c == nil || c.Sign() <= 0 || c.Cmp(g.P) >= 0 {
				return fmt.Errorf("elgamal: ciphertext %d component is not a canonical nonzero residue mod P", i)
			}
		}
	}
	return nil
}

// PublicKey is an ElGamal public key h = g^x.
type PublicKey struct {
	Group *Group
	H     *big.Int
}

// SecretKey holds the decryption exponent.
type SecretKey struct {
	PublicKey
	X *big.Int
}

// Ciphertext is an exponent-ElGamal ciphertext (A, B) = (g^k, h^k·g^m),
// encrypting the field element m in the exponent.
type Ciphertext struct {
	A, B *big.Int
}

// GenerateKey produces a key pair for the group using randomness from rnd.
func (g *Group) GenerateKey(rnd io.Reader) (*SecretKey, error) {
	x, err := randExponent(g.Q, rnd)
	if err != nil {
		return nil, err
	}
	h := new(big.Int).Exp(g.G, x, g.P)
	return &SecretKey{PublicKey: PublicKey{Group: g, H: h}, X: x}, nil
}

// randExponent returns a uniform value in [1, q).
func randExponent(q *big.Int, rnd io.Reader) (*big.Int, error) {
	nbytes := (q.BitLen() + 7) / 8
	buf := make([]byte, nbytes)
	shift := uint(nbytes*8 - q.BitLen())
	for {
		if _, err := io.ReadFull(rnd, buf); err != nil {
			return nil, err
		}
		v := new(big.Int).SetBytes(buf)
		v.Rsh(v, shift)
		if v.Sign() > 0 && v.Cmp(q) < 0 {
			return v, nil
		}
	}
}

// Encrypt encrypts the field element m (in the exponent). The three
// fixed-base powers (g^k, h^k, g^m) run off the shared windowed tables for
// G and H — the parameter e of Figure 3 is dominated by exactly these.
func (pk *PublicKey) Encrypt(f *field.Field, m field.Element, rnd io.Reader) (Ciphertext, error) {
	k, err := randExponent(pk.Group.Q, rnd)
	if err != nil {
		return Ciphertext{}, err
	}
	P := pk.Group.P
	tG := pk.Group.FixedBase(pk.Group.G)
	tH := pk.Group.FixedBase(pk.H)
	a := tG.Exp(k)
	b := tH.Exp(k)
	gm := tG.Exp(f.ToBig(m))
	b.Mul(b, gm).Mod(b, P)
	return Ciphertext{A: a, B: b}, nil
}

// EncryptVector encrypts each element of v, serially. It is exactly
// EncryptVectorParallel with one worker; both consume rnd identically.
func (pk *PublicKey) EncryptVector(f *field.Field, v []field.Element, rnd io.Reader) ([]Ciphertext, error) {
	return pk.EncryptVectorParallel(f, v, rnd, 1)
}

// EncryptVectorParallel encrypts v over a pool of workers. The encryption
// exponents are drawn from rnd serially up front (element order, exactly as
// the serial path consumes the stream), so for a deterministic rnd the
// output is identical for every worker count; only the fixed-base work is
// sharded. This is the verifier's per-batch Enc(r) setup — the e·|u| term
// of Figure 3's "construct queries" row.
//
// Unlike per-element Encrypt, the whole vector shares one reduction of all
// exponents to limbs, per-shard scratch buffers, and a Montgomery-domain
// combine: B = h^k·g^m is formed by chaining the two table walks into one
// accumulator, dropping the per-element big.Int multiply-and-mod.
func (pk *PublicKey) EncryptVectorParallel(f *field.Field, v []field.Element, rnd io.Reader, workers int) ([]Ciphertext, error) {
	ks := make([]*big.Int, len(v))
	for i := range ks {
		k, err := randExponent(pk.Group.Q, rnd)
		if err != nil {
			return nil, err
		}
		ks[i] = k
	}
	if len(v) == 0 {
		return []Ciphertext{}, nil
	}
	g := pk.Group
	tG := g.FixedBase(g.G)
	tH := g.FixedBase(pk.H)
	m := g.kern().m
	ql := (g.Q.BitLen() + 63) / 64
	// One flattened limb reduction for both exponent vectors. randExponent
	// output is always < Q; field elements usually are too (the production
	// fields equal the exponent order), but a field with p > Q is reduced
	// here — exactly as the per-element Exp path always did — rather than
	// silently encoding an unreduced exponent.
	klimbs := make([]uint64, len(v)*ql)
	mlimbs := make([]uint64, len(v)*ql)
	var tmp big.Int
	for i := range v {
		copy(klimbs[i*ql:], limbsFromBig(ks[i], ql))
		e := f.ToBig(v[i])
		if e.Sign() < 0 || e.Cmp(g.Q) >= 0 {
			tmp.Mod(e, g.Q)
			e = &tmp
		}
		copy(mlimbs[i*ql:], limbsFromBig(e, ql))
	}
	out := make([]Ciphertext, len(v))
	if workers < 1 {
		workers = 1
	}
	if workers > len(v) {
		workers = len(v)
	}
	_ = par.ForEach(context.Background(), workers, workers, func(s int) error {
		lo, hi := len(v)*s/workers, len(v)*(s+1)/workers
		if lo == hi {
			return nil
		}
		obs.Default().Counter(MetricFixedBaseExps).Add(int64(3 * (hi - lo)))
		t := m.scratch()
		acc := make([]uint64, m.n)
		for i := lo; i < hi; i++ {
			ke := klimbs[i*ql : (i+1)*ql]
			a := big.NewInt(1)
			if tG.accMont(acc, ke, false, t) {
				a = m.fromMont(acc, t)
			}
			b := big.NewInt(1)
			started := tH.accMont(acc, ke, false, t)
			started = tG.accMont(acc, mlimbs[i*ql:(i+1)*ql], started, t)
			if started {
				b = m.fromMont(acc, t)
			}
			out[i] = Ciphertext{A: a, B: b}
		}
		return nil
	})
	return out, nil
}

// DecryptExp decrypts to g^m mod P (the message stays in the exponent).
func (sk *SecretKey) DecryptExp(ct Ciphertext) *big.Int {
	P := sk.Group.P
	// B · A^{-x} = g^m
	ax := new(big.Int).Exp(ct.A, sk.X, P)
	ax.ModInverse(ax, P)
	out := new(big.Int).Mul(ct.B, ax)
	return out.Mod(out, P)
}

// ExpOfField returns g^m mod P for a field element m — what DecryptExp would
// yield for a correct encryption of m. It runs off the generator's shared
// fixed-base table; the verifier's consistency check calls it per instance.
func (g *Group) ExpOfField(f *field.Field, m field.Element) *big.Int {
	return g.GeneratorTable().Exp(f.ToBig(m))
}

// One returns the ciphertext-neutral element Enc(0) with zero randomness —
// valid as an accumulator seed for homomorphic sums.
func (g *Group) One() Ciphertext {
	return Ciphertext{A: big.NewInt(1), B: big.NewInt(1)}
}

// Add returns a ciphertext encrypting m1 + m2.
func (g *Group) Add(c1, c2 Ciphertext) Ciphertext {
	a := new(big.Int).Mul(c1.A, c2.A)
	a.Mod(a, g.P)
	b := new(big.Int).Mul(c1.B, c2.B)
	b.Mod(b, g.P)
	return Ciphertext{A: a, B: b}
}

// ScalarMul returns a ciphertext encrypting s·m.
func (g *Group) ScalarMul(c Ciphertext, f *field.Field, s field.Element) Ciphertext {
	e := f.ToBig(s)
	return Ciphertext{
		A: new(big.Int).Exp(c.A, e, g.P),
		B: new(big.Int).Exp(c.B, e, g.P),
	}
}

// InnerProduct homomorphically computes Enc(Σ u_i·m_i) from Enc(m_i) and
// plaintext weights u. This is the prover's commitment evaluation — the
// (h·|u|) term in Figure 3's "Issue responses" row. Zero weights are
// skipped, which matters for sparse proof vectors. The two component
// products run on the multi-exponentiation kernel (multiexp.go) over a
// shared scalar reduction, instead of one Add + ScalarMul (two full-width
// modexps and four allocations) per element.
func (g *Group) InnerProduct(cts []Ciphertext, f *field.Field, u []field.Element) (Ciphertext, error) {
	return g.innerProduct(cts, f, u, 1)
}

// InnerProductParallel is InnerProduct sharded over a worker pool; results
// are identical for every worker count.
func (g *Group) InnerProductParallel(cts []Ciphertext, f *field.Field, u []field.Element, workers int) (Ciphertext, error) {
	return g.innerProduct(cts, f, u, workers)
}

// GenerateGroup searches for a prime P = k·q + 1 with the given bit length
// and a generator of the order-q subgroup. It is used by tests with small
// fields; the production groups are compiled in (see params.go).
func GenerateGroup(q *big.Int, bitLen int, rnd io.Reader) (*Group, error) {
	if bitLen <= q.BitLen()+8 {
		return nil, errors.New("elgamal: group size too close to subgroup order")
	}
	one := big.NewInt(1)
	kbits := bitLen - q.BitLen()
	kbuf := make([]byte, (kbits+7)/8)
	for tries := 0; tries < 200000; tries++ {
		if _, err := io.ReadFull(rnd, kbuf); err != nil {
			return nil, err
		}
		k := new(big.Int).SetBytes(kbuf)
		k.SetBit(k, kbits-1, 1)
		if k.Bit(0) == 1 {
			k.Add(k, one)
		}
		P := new(big.Int).Mul(k, q)
		P.Add(P, one)
		if P.BitLen() != bitLen || !P.ProbablyPrime(20) {
			continue
		}
		for h := int64(2); h < 1000; h++ {
			g := new(big.Int).Exp(big.NewInt(h), k, P)
			if g.Cmp(one) != 0 {
				return &Group{P: P, G: g, Q: new(big.Int).Set(q)}, nil
			}
		}
	}
	return nil, errors.New("elgamal: no group found")
}
