package elgamal

import (
	"math/big"
	"testing"

	"zaatar/internal/field"
	"zaatar/internal/prg"
)

// TestSignedDigitsRoundTrip checks the decomposition invariants directly:
// Σ d_j·2^(jw) reconstructs the scalar and every digit magnitude is ≤
// 2^(w-1), for the full width range including the single-bucket w=1.
func TestSignedDigitsRoundTrip(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("signed-digits"), 1)
	exps := []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Sub(g.Q, big.NewInt(1))}
	for i := 0; i < 20; i++ {
		exps = append(exps, f.ToBig(f.Rand(rnd)))
	}
	sc := g.reduceScalars(exps)
	for w := 1; w <= 16; w++ {
		digits, nwin := sc.signedDigits(w)
		half := int64(1) << uint(w-1)
		for i, e := range exps {
			got := new(big.Int)
			tmp := new(big.Int)
			for j := nwin - 1; j >= 0; j-- {
				d := int64(digits[i*nwin+j])
				if d > half || d < -half+1 {
					t.Fatalf("w=%d scalar %d digit %d out of range: %d", w, i, j, d)
				}
				got.Lsh(got, uint(w))
				got.Add(got, tmp.SetInt64(d))
			}
			want := new(big.Int).Mod(e, g.Q)
			if got.Cmp(want) != 0 {
				t.Fatalf("w=%d scalar %d: digits reconstruct %v, want %v", w, i, got, want)
			}
		}
	}
}

// TestPippengerSignedAllWindows drives the signed kernel directly at every
// width — including w=1, where recoding can never go negative and the
// kernel degenerates to one bucket — against the naive product.
func TestPippengerSignedAllWindows(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("signed-windows"), 2)
	const n = 40
	bases := subgroupBases(g, n, rnd)
	exps := make([]*big.Int, n)
	for i := range exps {
		exps[i] = f.ToBig(f.Rand(rnd))
	}
	exps[0] = big.NewInt(0)
	exps[1] = new(big.Int).Sub(g.Q, big.NewInt(1))
	want := g.MultiExpNaive(bases, exps)

	k := g.kern()
	tb := k.m.scratch()
	mb := k.toMontBases(bases, tb)
	inv := make([]uint64, len(mb))
	k.m.batchInv(inv, mb, tb)
	sc := g.reduceScalars(exps)
	for w := 1; w <= 12; w++ {
		digits, nwin := sc.signedDigits(w)
		acc, ok := k.pippengerSigned(mb, inv, n, digits, nwin, w, tb)
		if !ok {
			t.Fatalf("w=%d: signed kernel returned identity", w)
		}
		if got := k.m.fromMont(acc, tb); got.Cmp(want) != 0 {
			t.Fatalf("w=%d: signed kernel = %v, want %v", w, got, want)
		}
	}
}

// TestSignedMatchesUnsigned is the property test of the recoding: the two
// Pippenger variants must agree on random inputs across sizes spanning the
// auto-selection crossover.
func TestSignedMatchesUnsigned(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("signed-vs-unsigned"), 3)
	for _, n := range []int{1, 2, 65, 200} {
		bases := subgroupBases(g, n, rnd)
		exps := make([]*big.Int, n)
		for i := range exps {
			exps[i] = f.ToBig(f.Rand(rnd))
		}
		u := g.MultiExpPippenger(bases, exps)
		s := g.MultiExpSigned(bases, exps)
		if u.Cmp(s) != 0 {
			t.Fatalf("n=%d: signed %v != unsigned %v", n, s, u)
		}
	}
}

// TestSignedKernelZeroBases: a base ≡ 0 mod P has no inverse, so the signed
// kernel must fall back to the unsigned buckets (where zeros are absorbed
// natively and the product collapses to 0) instead of panicking in the batch
// inversion — the unsigned kernel has always been total over such bases, and
// auto selection must not change that. Sizes straddle the Straus crossover
// so both the forced and auto-selected signed paths are hit.
func TestSignedKernelZeroBases(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("signed-zero"), 6)
	for _, n := range []int{3, 100} {
		bases := subgroupBases(g, n, rnd)
		exps := make([]*big.Int, n)
		for i := range exps {
			exps[i] = f.ToBig(f.Rand(rnd))
		}
		bases[n/2] = big.NewInt(0)
		want := g.MultiExpNaive(bases, exps)
		if got := g.MultiExpSigned(bases, exps); got.Cmp(want) != 0 {
			t.Fatalf("n=%d: forced signed = %v, want %v", n, got, want)
		}
		if got := g.MultiExp(bases, exps); got.Cmp(want) != 0 {
			t.Fatalf("n=%d: auto = %v, want %v", n, got, want)
		}
		// A nonzero multiple of P is the same degenerate class in disguise.
		bases[n/2] = new(big.Int).Set(g.P)
		if got := g.MultiExpSigned(bases, exps); got.Cmp(want) != 0 {
			t.Fatalf("n=%d multiple of P: signed = %v, want %v", n, got, want)
		}
	}
}

// TestBatchInv checks Montgomery's trick against per-element ModInverse.
func TestBatchInv(t *testing.T) {
	g, _ := testGroup(t)
	rnd := prg.NewFromSeed([]byte("batch-inv"), 4)
	k := g.kern()
	tb := k.m.scratch()
	for _, n := range []int{1, 2, 7, 33} {
		bases := subgroupBases(g, n, rnd)
		mb := k.toMontBases(bases, tb)
		inv := make([]uint64, len(mb))
		k.m.batchInv(inv, mb, tb)
		mn := k.m.n
		for i := 0; i < n; i++ {
			got := k.m.fromMont(inv[i*mn:(i+1)*mn], tb)
			want := new(big.Int).ModInverse(bases[i], g.P)
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d element %d: batchInv %v, want %v", n, i, got, want)
			}
		}
	}
}

// TestInnerProductPrepared checks the prepared path against the unprepared
// inner product — including zero weights, which Prepare keeps in place
// while InnerProduct compacts them — for every worker count.
func TestInnerProductPrepared(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("prepared-ip"), 5)
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		t.Fatal(err)
	}
	const n = 90
	m := f.RandVector(n, rnd)
	cts, err := sk.EncryptVector(f, m, rnd)
	if err != nil {
		t.Fatal(err)
	}
	u := f.RandVector(n, rnd)
	u[0] = f.Zero()
	u[n/2] = f.Zero()
	want, err := g.InnerProduct(cts, f, u)
	if err != nil {
		t.Fatal(err)
	}
	pv := g.Prepare(cts)
	if pv.Len() != n {
		t.Fatalf("Prepare: Len = %d, want %d", pv.Len(), n)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := g.InnerProductPrepared(pv, f, u, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.A.Cmp(want.A) != 0 || got.B.Cmp(want.B) != 0 {
			t.Fatalf("workers=%d: prepared inner product diverges", workers)
		}
	}

	// All-zero weights must hit the identity path.
	zero := make([]field.Element, n)
	for i := range zero {
		zero[i] = f.Zero()
	}
	got, err := g.InnerProductPrepared(pv, f, zero, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.A.Cmp(big.NewInt(1)) != 0 || got.B.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("all-zero weights: got %v,%v, want identity", got.A, got.B)
	}

	// Misuse must error, not corrupt.
	if _, err := g.InnerProductPrepared(pv, f, u[:n-1], 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	g2, _ := testGroup(t)
	if _, err := g2.InnerProductPrepared(pv, f, u, 1); err == nil {
		t.Fatal("foreign group accepted")
	}
}
