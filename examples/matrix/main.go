// Matrix: bypass the compiler and build the quadratic-form constraints for
// a fixed-size matrix-vector product by hand, then run the QAP-based linear
// PCP directly against in-memory proof oracles. This is the layer beneath
// the public API: internal/constraint → internal/qap → internal/pcp, the
// pipeline of §3 and Appendix A.
//
// The computation: y = M·x for a 3×3 constant matrix M — the kind of
// hand-tailored computation prior work (Ginger) specialized for, which
// Zaatar handles with the same machinery as everything else.
//
// Run with:
//
//	go run ./examples/matrix
package main

import (
	"fmt"
	"log"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
	"zaatar/internal/prg"
	"zaatar/internal/qap"
)

func main() {
	f := field.F128()
	one := f.One()

	// Wires 1..3: inputs x; wires 4..6: outputs y; wires 7..9: copies of x
	// (unbound), so no degree-2 term touches a bound wire.
	m := [3][3]int64{{2, 0, 1}, {1, 3, 0}, {0, 1, 1}}
	qs := &constraint.QuadSystem{
		NumVars: 9,
		In:      []int{1, 2, 3},
		Out:     []int{4, 5, 6},
	}
	// Copy constraints: (x_i)·1 = copy_i.
	for i := 0; i < 3; i++ {
		qs.Cons = append(qs.Cons, constraint.QuadConstraint{
			A: constraint.LinComb{{Coeff: one, Var: 1 + i}},
			B: constraint.LinComb{{Coeff: one, Var: 0}},
			C: constraint.LinComb{{Coeff: one, Var: 7 + i}},
		})
	}
	// Row constraints: (Σ_j m[i][j]·copy_j)·1 = y_i.
	for i := 0; i < 3; i++ {
		var row constraint.LinComb
		for j := 0; j < 3; j++ {
			if m[i][j] != 0 {
				row = append(row, constraint.LinTerm{Coeff: f.FromInt64(m[i][j]), Var: 7 + j})
			}
		}
		qs.Cons = append(qs.Cons, constraint.QuadConstraint{
			A: row,
			B: constraint.LinComb{{Coeff: one, Var: 0}},
			C: constraint.LinComb{{Coeff: one, Var: 4 + i}},
		})
	}

	// Canonical wire order, then the QAP encoding of Appendix A.1.
	canonical, perm := qs.Normalize()
	q, err := qap.New(f, canonical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QAP: %d constraints, divisor degree %d, %d non-zero matrix entries\n",
		q.NC, q.NC, q.NNZ())

	// The prover's side: a witness for x = (5, -2, 7).
	x := []int64{5, -2, 7}
	w := make([]field.Element, 10)
	w[0] = one
	var y [3]int64
	for i := 0; i < 3; i++ {
		w[1+i] = f.FromInt64(x[i])
		w[7+i] = f.FromInt64(x[i])
		for j := 0; j < 3; j++ {
			y[i] += m[i][j] * x[j]
		}
		w[4+i] = f.FromInt64(y[i])
	}
	cw := perm.ApplyToAssignment(w)
	if err := canonical.Check(f, cw); err != nil {
		log.Fatal(err)
	}

	// Proof vectors: z (the unbound assignment) and h (the coefficients of
	// H(t) = P_w(t)/D(t)).
	z, h, err := pcp.BuildProof(q, cw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proof: |z| = %d, |h| = %d (Ginger's z⊗z table would have %d entries)\n",
		len(z), len(h), len(z)*len(z))

	// The verifier's side: Figure 10 with the production parameters.
	v, err := pcp.NewZaatar(q, pcp.DefaultParams(), prg.NewFromSeed([]byte("matrix-example"), 0))
	if err != nil {
		log.Fatal(err)
	}
	io := cw[q.NZ+1:] // bound wires: inputs then outputs
	res := v.Check(pcp.Answer(f, z, v.ZQueries), pcp.Answer(f, h, v.HQueries), io)
	fmt.Printf("honest prover: verified = %v\n", res.OK)

	// A lying prover claims y_0+1; the divisibility test catches it.
	badIO := append([]field.Element(nil), io...)
	badIO[3] = f.Add(badIO[3], one)
	res = v.Check(pcp.Answer(f, z, v.ZQueries), pcp.Answer(f, h, v.HQueries), badIO)
	fmt.Printf("lying prover:  verified = %v (%s)\n", res.OK, res.Reason)
}
