// MapReduce-style outsourcing: the paper's motivating scenario (§1, §7) —
// data-parallel work whose "computation structure precisely matches the
// batching requirement of Zaatar's verifier". A map phase (word-histogram
// over fixed-size shards) runs as one batch sharded across a small prover
// farm (zaatar.DialFarm); the verifier checks every shard's argument and
// then reduces the verified partial histograms locally.
//
// Run with:
//
//	go run ./examples/mapreduce
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"net"

	"zaatar"
)

// The "map" computation: count symbol occurrences in a shard of N tokens
// drawn from a 4-symbol alphabet.
const mapSrc = `
const N = 24;
const SYMS = 4;
input shard[N] : int8;
output hist[SYMS] : int32;
for s = 0 to SYMS-1 {
	hist[s] = 0;
	for i = 0 to N-1 {
		if (shard[i] == s) { hist[s] = hist[s] + 1; }
	}
}
`

const (
	shards   = 6
	nTokens  = 24
	nSymbols = 4
	workers  = 3
)

func main() {
	// Spin up three in-process farm workers on loopback TCP — each is a
	// full prover service, identical to `zaatar-server -worker`.
	ctx := context.Background()
	var addrs []string
	for i := 0; i < workers; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = zaatar.ServeWorker(ctx, ln, zaatar.WithServerWorkers(2)) }()
		addrs = append(addrs, ln.Addr().String())
	}

	// The dataset: six shards of 24 tokens.
	rng := rand.New(rand.NewSource(11))
	batch := make([][]*big.Int, shards)
	trueHist := make([]int64, nSymbols)
	for s := range batch {
		batch[s] = make([]*big.Int, nTokens)
		for i := range batch[s] {
			sym := rng.Intn(nSymbols)
			batch[s][i] = big.NewInt(int64(sym))
			trueHist[sym]++
		}
	}

	// Map phase: one verified batch, sharded across the farm with requeue
	// if a worker dies mid-batch. Reduced PCP repetitions keep the demo
	// snappy; use 20/8 for production soundness.
	client, err := zaatar.DialFarm(ctx, addrs, mapSrc, zaatar.WithParams(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	res, err := client.RunBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}

	// Reduce phase: local, over verified outputs only.
	reduced := make([]int64, nSymbols)
	for s := range batch {
		if !res.Accepted[s] {
			log.Fatalf("shard %d failed verification: %s", s, res.Reasons[s])
		}
		for k := 0; k < nSymbols; k++ {
			reduced[k] += res.Outputs[s][k].Int64()
		}
		fmt.Printf("shard %d verified: %v\n", s, res.Outputs[s])
	}
	fmt.Printf("\nreduced histogram: %v\n", reduced)
	for k := range reduced {
		if reduced[k] != trueHist[k] {
			log.Fatalf("verified reduction disagrees with ground truth at symbol %d", k)
		}
	}
	fmt.Println("matches ground truth ✓ (map phase proved by a 3-worker farm, reduce done locally)")
}
