// Clustering: outsource PAM (Partitioning Around Medoids) clustering — one
// of the paper's §5 benchmark computations — over a batch, the setting the
// paper motivates: repeated data-parallel work (e.g. the map phase of
// MapReduce or scientific simulations) where one query setup amortizes over
// many instances.
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"zaatar"
	"zaatar/internal/benchprogs"
)

func main() {
	// 8 points in 4 dimensions, two clusters, one refinement pass — a
	// scaled-down version of the paper's m=20, d=128 configuration.
	bench := benchprogs.PAM(8, 4, 1)
	prog, err := zaatar.Compile(bench.Source)
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Stats()
	fmt.Printf("PAM m=8 d=4: |C_zaatar| = %d, |u_zaatar| = %d (Ginger would need |u| = %d)\n\n",
		st.ZaatarConstraints, st.UZaatar, st.UGinger)

	// A batch of 6 datasets; reduced PCP repetitions keep the demo quick
	// (drop WithParams for the paper's production soundness).
	rng := rand.New(rand.NewSource(42))
	batch := make([][]*big.Int, 6)
	for i := range batch {
		batch[i] = bench.GenInputs(rng)
	}
	res, err := zaatar.Run(prog, batch, zaatar.WithParams(2, 2), zaatar.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	for i := range batch {
		if !res.Accepted[i] {
			log.Fatalf("instance %d rejected: %s", i, res.Reasons[i])
		}
		fmt.Printf("dataset %d verified; medoid 0 = %v\n", i, res.Outputs[i][:4])
	}

	// Amortization at work: the verifier's setup happened once for the
	// whole batch.
	perInstanceSetup := res.VerifierSetup() / 6
	fmt.Printf("\nverifier setup %v total → %v per instance at β=6; per-instance checking %v\n",
		res.VerifierSetup(), perInstanceSetup, res.VerifierPerInstance()/6)
	fmt.Printf("prover batch wall time %v across 4 workers\n", res.ProverWall())
}
