// Shortest paths: outsource Floyd-Warshall all-pairs shortest paths (a §5
// benchmark) and demonstrate the parallel prover of Figure 6 — with enough
// workers, the latency of a batch approaches the latency of one instance.
//
// Run with:
//
//	go run ./examples/shortestpaths
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"runtime"

	"zaatar"
	"zaatar/internal/benchprogs"
)

func main() {
	bench := benchprogs.FloydWarshall(6)
	prog, err := zaatar.Compile(bench.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Floyd-Warshall m=6: %d constraints (O(m³) per Figure 9)\n\n", prog.Quad.NumConstraints())

	fmt.Printf("machine: %d CPU core(s) — batch speedup is bounded by this\n", runtime.NumCPU())
	rng := rand.New(rand.NewSource(7))
	batch := make([][]*big.Int, 8)
	for i := range batch {
		batch[i] = bench.GenInputs(rng)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		res, err := zaatar.Run(prog, batch,
			zaatar.WithParams(2, 2), zaatar.WithWorkers(workers), zaatar.WithSeed([]byte("apsp")))
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllAccepted() {
			log.Fatalf("batch rejected: %v", res.Reasons)
		}
		fmt.Printf("β=8 with %d workers: prover batch wall time %v\n", workers, res.ProverWall())
	}

	// Spot-check one verified distance matrix against the direct algorithm.
	res, err := zaatar.Run(prog, batch[:1], zaatar.WithParams(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	want := bench.Reference(batch[0])
	for i := range want {
		if want[i].Cmp(res.Outputs[0][i]) != 0 {
			log.Fatalf("verified output %d disagrees with local recomputation", i)
		}
	}
	fmt.Println("\nverified distance matrix matches local recomputation ✓")
}
