// Quickstart: the decrement-by-3 computation of §2.1 of the paper, run
// through the complete verified-computation protocol — compile to
// constraints, outsource a small batch, and check the argument.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/big"

	"zaatar"
)

const src = `
// y = x - 3, the running example of §2.1: its equivalent constraints are
// {X - Z = 0, Y - (Z - 3) = 0}.
input x : int32;
output y : int32;
y = x - 3;
`

func main() {
	prog, err := zaatar.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Stats()
	fmt.Printf("compiled: %d ginger constraints, %d zaatar constraints\n",
		st.GingerConstraints, st.ZaatarConstraints)
	fmt.Printf("proof vectors: ginger %d elements, zaatar %d elements\n\n", st.UGinger, st.UZaatar)

	// A batch of three instances. The production PCP parameters (ρ_lin=20,
	// ρ=8, soundness error < 9.6×10⁻⁷) and the full ElGamal commitment are
	// the defaults.
	batch := [][]*big.Int{
		{big.NewInt(10)},
		{big.NewInt(0)},
		{big.NewInt(-100)},
	}
	res, err := zaatar.Run(prog, batch)
	if err != nil {
		log.Fatal(err)
	}
	for i := range batch {
		fmt.Printf("Ψ(%v): y = %v, verified = %v\n", batch[i][0], res.Outputs[i][0], res.Accepted[i])
	}
	fmt.Printf("\nverifier: query+key setup %v (amortized over the batch), checking %v\n",
		res.VerifierSetup(), res.VerifierPerInstance())
	for i, pt := range res.ProverTimes {
		fmt.Printf("prover %d: solve %v | build proof %v | crypto %v | answer %v\n",
			i, pt.Solve, pt.ConstructU, pt.Crypto, pt.Answer)
	}
}
