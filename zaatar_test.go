package zaatar

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"testing"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/prg"
	"zaatar/internal/vc"
)

func testGroup(t *testing.T) *elgamal.Group {
	t.Helper()
	g, err := elgamal.GenerateGroup(field.F128().Modulus(), 320, prg.NewFromSeed([]byte("api-test"), 0))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestQuickstart(t *testing.T) {
	prog, err := Compile(`
		input x : int32;
		output y : int32;
		y = x - 3;
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog,
		[][]*big.Int{{big.NewInt(10)}, {big.NewInt(0)}},
		WithParams(2, 2), WithGroup(testGroup(t)), WithSeed([]byte("q")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if res.Outputs[0][0].Int64() != 7 || res.Outputs[1][0].Int64() != -3 {
		t.Fatalf("outputs: %v", res.Outputs)
	}
}

func TestSplitVerifierProver(t *testing.T) {
	prog, err := Compile(`
		input a, b : int32;
		output p : int64;
		p = a * b;
	`)
	if err != nil {
		t.Fatal(err)
	}
	opts := []RunOption{WithParams(1, 1), WithGroup(testGroup(t)), WithSeed([]byte("s"))}
	v, err := NewVerifier(prog, opts...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(prog, opts...)
	if err != nil {
		t.Fatal(err)
	}
	p.HandleCommitRequest(v.Setup())
	in := []*big.Int{big.NewInt(6), big.NewInt(7)}
	cm, st, err := p.Commit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := v.Decommit()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.HandleDecommit(dec); err != nil {
		t.Fatal(err)
	}
	resp, err := p.Respond(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	ok, reason := v.VerifyInstance(context.Background(), in, cm, resp)
	if !ok {
		t.Fatalf("rejected: %s", reason)
	}
	if cm.Output[0].Int64() != 42 {
		t.Fatalf("output: %v", cm.Output)
	}
}

func TestGingerOption(t *testing.T) {
	prog, err := Compile(`input x : int16; output y : int32; y = x * x;`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, [][]*big.Int{{big.NewInt(-12)}},
		WithGingerProtocol(), WithParams(1, 1), WithoutCommitment(), WithSeed([]byte("g")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() || res.Outputs[0][0].Int64() != 144 {
		t.Fatalf("ginger run failed: %v %v", res.Reasons, res.Outputs)
	}
}

func TestField220Option(t *testing.T) {
	// int64 squaring needs the 220-bit field (see the compiler's range
	// rules).
	src := `input x : int64; output y : int64; y = x * x;`
	if _, err := Compile(src); err == nil {
		t.Fatal("128-bit field should reject int64 squaring")
	}
	prog, err := Compile(src, WithField220())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, [][]*big.Int{{big.NewInt(1 << 31)}},
		WithParams(1, 1), WithoutCommitment(), WithSeed([]byte("f")))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 62)
	if res.Outputs[0][0].Cmp(want) != 0 {
		t.Fatalf("output %v, want %v", res.Outputs[0][0], want)
	}
}

func TestDefaultParamsExported(t *testing.T) {
	p := DefaultParams()
	if p.RhoLin != 20 || p.Rho != 8 {
		t.Fatalf("DefaultParams = %+v", p)
	}
}

func TestRunContextCancelled(t *testing.T) {
	prog, err := Compile(`input x : int32; output y : int32; y = x + 1;`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunContext(ctx, prog, [][]*big.Int{{big.NewInt(1)}},
		WithParams(1, 1), WithoutCommitment(), WithSeed([]byte("c")))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWithMetrics(t *testing.T) {
	prog, err := Compile(`input x : int32; output y : int32; y = x + 1;`)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := Run(prog, [][]*big.Int{{big.NewInt(4)}, {big.NewInt(5)}},
		WithParams(1, 1), WithoutCommitment(), WithSeed([]byte("m")), WithMetrics(reg))
	if err != nil || !res.AllAccepted() {
		t.Fatalf("run failed: %v", err)
	}
	if got := reg.Counter(vc.MetricInstances).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", vc.MetricInstances, got)
	}
	var buf strings.Builder
	reg.WriteText(&buf)
	if !strings.Contains(buf.String(), vc.MetricSpanBatch) {
		t.Fatalf("metrics text missing %s:\n%s", vc.MetricSpanBatch, buf.String())
	}
}
