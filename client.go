package zaatar

import (
	"context"
	"fmt"
	"math/big"
	"net"
	"strings"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
	"zaatar/internal/transport"
	"zaatar/internal/vc"
)

// SessionResult is the verifier-side outcome of one batch run against a
// remote prover: per-instance acceptance, rejection reasons, and claimed
// outputs.
type SessionResult = transport.SessionResult

// ProtocolVersionError reports a wire protocol version this build does not
// speak; errors.As with *ProtocolVersionError distinguishes it from other
// dial failures.
type ProtocolVersionError = transport.ProtocolVersionError

// sessionRunner is what a Client drives: a single kept-alive session
// (*transport.Session) or a farm coordinator (*farm.Farm) scheduling shards
// over one.
type sessionRunner interface {
	RunBatch(ctx context.Context, batch [][]*big.Int) (*transport.SessionResult, error)
	Program() *compiler.Program
	WireVersion() int
	Backend() string
	SetupDuration() time.Duration
	Close() error
}

// Client is the verifier side of a kept-alive session with one or more
// prover servers. Dial negotiates the wire version and performs the
// one-time session setup (compilation plus the first batch's key
// generation); each RunBatch then proves and verifies one batch. Under
// wire protocol v2 all batches share the connection, the negotiated
// program, and the server's cached compilation, so batches after the
// first skip compilation and negotiation entirely; the commitment key is
// redrawn per batch (reusing it across decommits would leak its secret
// vector). A Client is safe for sequential use; RunBatch calls are
// serialized. DialFarm returns the same Client over a sharding
// coordinator instead of a plain session.
type Client struct {
	sess sessionRunner
}

// dialSession dials every addr and opens one (possibly multi-leg) session
// for src — the shared machinery behind Dial and DialFarm.
func dialSession(ctx context.Context, addrs []string, src string, o options) (*transport.Session, error) {
	// Build the backend offer, most preferred first. BackendAuto needs the
	// compiled program for the cost model, so it compiles here and hands
	// the program to the session (which would otherwise compile the same
	// source again). The legacy Ginger bool is kept consistent with the
	// offer's head so pre-negotiation servers — which see only the bool —
	// land on the same backend the client expects.
	var prog *Program
	var offer []string
	switch o.cfg.Backend {
	case "":
		if o.cfg.Protocol == vc.Ginger {
			offer = []string{BackendGinger}
		} else {
			offer = []string{BackendZaatar}
		}
	case BackendAuto:
		var err error
		prog, err = compiler.Compile(o.field, src)
		if err != nil {
			return nil, err
		}
		offer = []string{RecommendBackend(prog)}
		if offer[0] != BackendZaatar {
			offer = append(offer, BackendZaatar)
		}
	default:
		offer = []string{o.cfg.Backend}
	}

	hello := transport.Hello{
		Source:       src,
		Field220:     o.field == field.F220(),
		Ginger:       offer[0] == BackendGinger,
		Backends:     offer,
		RhoLin:       o.cfg.Params.RhoLin,
		Rho:          o.cfg.Params.Rho,
		NoCommitment: o.cfg.NoCommitment,
	}
	copts := transport.ClientOptions{
		Seed:      o.cfg.Seed,
		Group:     o.cfg.Group,
		Workers:   o.cfg.Workers,
		IOTimeout: o.ioTo,
		Obs:       o.cfg.Obs,
		Program:   prog,
		Logger:    o.logger,
	}
	copts.Addrs = addrs
	var dialer net.Dialer
	var conns []net.Conn
	for _, a := range addrs {
		conn, err := dialer.DialContext(ctx, "tcp", a)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, fmt.Errorf("zaatar: dialing %s: %w", a, err)
		}
		conns = append(conns, conn)
	}
	// Knowing the addresses lets the session retry a prover on a fresh
	// connection, which unlocks the v3 hash-first hello: the source rides
	// only when a server actually needs it, and a pre-v3 server that drops
	// the hash-first hello gets a full-source redial at its own dialect.
	copts.Redial = func(ctx context.Context, i int) (net.Conn, error) {
		return dialer.DialContext(ctx, "tcp", addrs[i])
	}
	sess, err := transport.NewSession(ctx, conns, hello, copts)
	if err != nil {
		for _, c := range conns {
			_ = c.Close()
		}
		return nil, err
	}
	return sess, nil
}

// Dial connects to a prover server (or several: addr may be a
// comma-separated list, in which case every batch is split across the
// provers — the paper's distributed prover, §5.1) and opens a session for
// src. The protocol parameters come from opts; WithField220 must match how
// the embedded source expects to be compiled, and server and client compile
// the same source independently. To shard batches across workers with
// failure recovery instead, see DialFarm.
func Dial(ctx context.Context, addr, src string, opts ...RunOption) (*Client, error) {
	o := buildRunOptions(opts)
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("zaatar: no prover address in %q", addr)
	}
	sess, err := dialSession(ctx, addrs, src, o)
	if err != nil {
		return nil, err
	}
	return &Client{sess: sess}, nil
}

// RunBatch proves and verifies one batch of instances against the session's
// provers. Every batch carries its own commit request and query seed; on a
// v2 session the connection and the negotiated program carry over.
func (c *Client) RunBatch(ctx context.Context, batch [][]*big.Int) (*SessionResult, error) {
	return c.sess.RunBatch(ctx, batch)
}

// Program returns the client-side compilation of the session's source (for
// io shape inspection).
func (c *Client) Program() *Program { return c.sess.Program() }

// WireVersion reports the negotiated wire protocol version (the minimum
// across prover connections): 3 for hash-first sessions, 2 for keep-alive
// peers that predate the artifact exchange, 1 when any peer only speaks
// the legacy one-batch dialect.
func (c *Client) WireVersion() int { return c.sess.WireVersion() }

// Backend reports the proof backend the session negotiated (every prover
// leg agrees on it — a distributed batch runs one encoding).
func (c *Client) Backend() string { return c.sess.Backend() }

// SetupDuration reports the verifier setup cost paid at Dial (query
// construction plus the first batch's commitment-key generation) — the
// amortized cost that batching spreads over a batch's instances.
func (c *Client) SetupDuration() time.Duration { return c.sess.SetupDuration() }

// Close ends the session (v2 peers get a clean goodbye frame) and closes
// every connection. Close is idempotent.
func (c *Client) Close() error { return c.sess.Close() }
