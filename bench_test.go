// Benchmarks mirroring the paper's evaluation, one per table/figure.
// These run at reduced sizes and PCP parameters so `go test -bench=.`
// completes on a laptop; cmd/zaatar-bench regenerates the full tables with
// configurable scale, parameters, and crypto.
//
//	§5.1 table  → BenchmarkTableMicro*
//	Figure 3    → BenchmarkFig3ModelValidation (reports measured/model)
//	Figure 4    → BenchmarkFig4Prover (reports ginger-est metric alongside)
//	Figure 5    → BenchmarkFig5Phases (reports per-phase metrics)
//	Figure 6    → BenchmarkFig6Workers
//	Figure 7    → BenchmarkFig7Breakeven (reports batch sizes as metrics)
//	Figure 8    → BenchmarkFig8Scaling
//	Figure 9    → BenchmarkFig9Encodings (reports sizes as metrics)
//
// Plus ablations for the design decisions DESIGN.md calls out:
//
//	BenchmarkAblationHPipeline — fast (NTT/subproduct-tree) vs naive O(n²)
//	                             construction of H(t)
//	BenchmarkAblationPolyMul   — NTT vs schoolbook multiplication
//	BenchmarkAblationMLEFold   — single-mul vs two-mul sum-check table fold
//	BenchmarkAblationCommitment — prover cost with and without ElGamal
package zaatar

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"zaatar/internal/benchprogs"
	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/costmodel"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
	"zaatar/internal/poly"
	"zaatar/internal/prg"
	"zaatar/internal/qap"
	"zaatar/internal/vc"
)

var benchCache = struct {
	sync.Mutex
	progs map[string]*compiler.Program
}{progs: map[string]*compiler.Program{}}

func compiled(b *testing.B, bench *benchprogs.Benchmark) *compiler.Program {
	b.Helper()
	benchCache.Lock()
	defer benchCache.Unlock()
	key := fmt.Sprintf("%s-%v", bench.Name, bench.Params)
	if p, ok := benchCache.progs[key]; ok {
		return p
	}
	p, err := compiler.Compile(bench.Field, bench.Source)
	if err != nil {
		b.Fatal(err)
	}
	benchCache.progs[key] = p
	return p
}

func quickCfg(workers int, crypto bool) vc.Config {
	return vc.Config{
		Params:       pcp.TestParams(),
		NoCommitment: !crypto,
		Workers:      workers,
		Seed:         []byte("bench"),
	}
}

// --- §5.1 microbenchmark table ---

func BenchmarkTableMicroFieldMul(b *testing.B) {
	for _, f := range []*field.Field{field.F128(), field.F220()} {
		b.Run(f.Name(), func(b *testing.B) {
			rnd := prg.NewFromSeed([]byte("f"), 0)
			x, y := f.Rand(rnd), f.Rand(rnd)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x = f.Mul(x, y)
			}
		})
	}
}

func BenchmarkTableMicroFieldInv(b *testing.B) {
	f := field.F128()
	rnd := prg.NewFromSeed([]byte("i"), 0)
	x := f.RandNonZero(rnd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Inv(f.Add(x, f.One()))
	}
}

func BenchmarkTableMicroPRGElement(b *testing.B) {
	f := field.F128()
	rnd := prg.NewFromSeed([]byte("c"), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Rand(rnd)
	}
}

func BenchmarkTableMicroEncrypt(b *testing.B) {
	f := field.F128()
	g := elgamal.GroupF128()
	rnd := prg.NewFromSeed([]byte("e"), 0)
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		b.Fatal(err)
	}
	m := f.Rand(rnd)
	// Warm up the G and H fixed-base tables; e is the steady-state cost.
	if _, err := sk.Encrypt(f, m, rnd); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(f, m, rnd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableMicroCiphertextOp measures h two ways: "naive" is one
// isolated Add + ScalarMul (how the seed measured it); "kernel" is the
// per-term cost of the multi-exponentiation-backed InnerProduct that the
// prover actually pays, amortized over a proof-sized vector.
func BenchmarkTableMicroCiphertextOp(b *testing.B) {
	f := field.F128()
	g := elgamal.GroupF128()
	rnd := prg.NewFromSeed([]byte("h"), 0)
	sk, _ := g.GenerateKey(rnd)
	ct, _ := sk.Encrypt(f, f.Rand(rnd), rnd)
	b.Run("naive", func(b *testing.B) {
		s := f.Rand(rnd)
		acc := g.One()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc = g.Add(acc, g.ScalarMul(ct, f, s))
		}
	})
	b.Run("kernel", func(b *testing.B) {
		const n = 256
		cts := make([]elgamal.Ciphertext, n)
		for i := range cts {
			cts[i] = ct
		}
		u := f.RandVector(n, rnd)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.InnerProduct(cts, f, u); err != nil {
				b.Fatal(err)
			}
		}
		// ns/op is the whole length-256 product; this is the h comparison.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/term")
	})
}

// --- Figure 3: model validation ---

func BenchmarkFig3ModelValidation(b *testing.B) {
	bench := benchprogs.LCS(10)
	prog := compiled(b, bench)
	rng := rand.New(rand.NewSource(1))
	batch := [][]*big.Int{bench.GenInputs(rng)}
	p := costmodel.Calibrate(bench.Field, nil, 300)
	st := prog.Stats()
	q := costmodel.Quantities{
		ZGinger: st.GingerVars, CGinger: st.GingerConstraints,
		ZZaatar: st.ZaatarVars, CZaatar: st.ZaatarConstraints,
		K: st.K, K2: st.K2, NX: prog.NumInputs(), NY: prog.NumOutputs(),
		Params: pcp.TestParams(),
	}
	b.ResetTimer()
	var measured float64
	for i := 0; i < b.N; i++ {
		res, err := vc.RunBatch(context.Background(), prog, quickCfg(1, false), batch)
		if err != nil {
			b.Fatal(err)
		}
		measured = res.ProverTimes[0].E2E().Seconds()
	}
	model := costmodel.ProverZaatar(p, q)
	b.ReportMetric(measured/model, "measured/model")
}

// --- Figure 4: per-instance prover, Zaatar measured vs Ginger estimated ---

func BenchmarkFig4Prover(b *testing.B) {
	for _, bench := range benchprogs.Small() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			prog := compiled(b, bench)
			rng := rand.New(rand.NewSource(2))
			batch := [][]*big.Int{bench.GenInputs(rng)}
			p := costmodel.Calibrate(bench.Field, nil, 200)
			st := prog.Stats()
			q := costmodel.Quantities{
				ZGinger: st.GingerVars, CGinger: st.GingerConstraints,
				ZZaatar: st.ZaatarVars, CZaatar: st.ZaatarConstraints,
				K: st.K, K2: st.K2, NX: prog.NumInputs(), NY: prog.NumOutputs(),
				Params: pcp.TestParams(),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vc.RunBatch(context.Background(), prog, quickCfg(1, false), batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(costmodel.ProverGinger(p, q), "ginger-est-sec")
		})
	}
}

// --- Figure 5: prover phase decomposition ---

func BenchmarkFig5Phases(b *testing.B) {
	bench := benchprogs.LCS(10)
	prog := compiled(b, bench)
	rng := rand.New(rand.NewSource(3))
	batch := [][]*big.Int{bench.GenInputs(rng)}
	var solve, cons, answer float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := vc.RunBatch(context.Background(), prog, quickCfg(1, false), batch)
		if err != nil {
			b.Fatal(err)
		}
		pt := res.ProverTimes[0]
		solve += pt.Solve.Seconds()
		cons += pt.ConstructU.Seconds()
		answer += pt.Answer.Seconds()
	}
	n := float64(b.N)
	b.ReportMetric(solve/n*1e3, "solve-ms")
	b.ReportMetric(cons/n*1e3, "constructU-ms")
	b.ReportMetric(answer/n*1e3, "answer-ms")
}

// --- Figure 6: parallel prover ---

func BenchmarkFig6Workers(b *testing.B) {
	bench := benchprogs.FloydWarshall(4)
	prog := compiled(b, bench)
	rng := rand.New(rand.NewSource(4))
	batch := make([][]*big.Int, 4)
	for i := range batch {
		batch[i] = bench.GenInputs(rng)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := vc.RunBatch(context.Background(), prog, quickCfg(workers, false), batch)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ProverWall().Seconds()*1e3, "batch-wall-ms")
			}
		})
	}
}

// BenchmarkPipelineOverlap measures what the respond→verify overlap buys:
// the same batch with the pipeline disabled (respond everything, then
// verify serially — the pre-pipeline engine) vs the staged pipeline that
// streams responded instances into parallel verification. Crypto is on so
// per-instance verification is substantial enough to overlap.
func BenchmarkPipelineOverlap(b *testing.B) {
	bench := benchprogs.FloydWarshall(4)
	prog := compiled(b, bench)
	rng := rand.New(rand.NewSource(6))
	batch := make([][]*big.Int, 8)
	for i := range batch {
		batch[i] = bench.GenInputs(rng)
	}
	for _, mode := range []struct {
		name       string
		workers    int
		noPipeline bool
	}{
		{"serial", 1, true},
		{"pipeline-4", 4, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := quickCfg(mode.workers, true)
			cfg.NoPipeline = mode.noPipeline
			for i := 0; i < b.N; i++ {
				res, err := vc.RunBatch(context.Background(), prog, cfg, batch)
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllAccepted() {
					b.Fatal("batch rejected")
				}
				b.ReportMetric(res.Metrics.RespondVerify.Seconds()*1e3, "respond+verify-ms")
			}
		})
	}
}

// --- Figure 7: break-even batch sizes (cost model at paper sizes) ---

func BenchmarkFig7Breakeven(b *testing.B) {
	bench := benchprogs.LCS(40)
	prog := compiled(b, bench)
	p := costmodel.Calibrate(bench.Field, nil, 200)
	st := prog.Stats()
	q := costmodel.Quantities{
		T:       1e-3,
		ZGinger: st.GingerVars, CGinger: st.GingerConstraints,
		ZZaatar: st.ZaatarVars, CZaatar: st.ZaatarConstraints,
		K: st.K, K2: st.K2, NX: prog.NumInputs(), NY: prog.NumOutputs(),
		Params: pcp.DefaultParams(),
	}
	b.ResetTimer()
	var bz, bg float64
	for i := 0; i < b.N; i++ {
		bz = costmodel.BreakevenZaatar(p, q)
		bg = costmodel.BreakevenGinger(p, q)
	}
	b.ReportMetric(bz, "zaatar-breakeven")
	b.ReportMetric(bg, "ginger-breakeven")
}

// --- Figure 8: prover scaling ---

func BenchmarkFig8Scaling(b *testing.B) {
	sizes := []*benchprogs.Benchmark{
		benchprogs.LCS(6), benchprogs.LCS(12), benchprogs.LCS(24),
	}
	for _, bench := range sizes {
		bench := bench
		b.Run(fmt.Sprintf("lcs-m%d", bench.Params["m"]), func(b *testing.B) {
			prog := compiled(b, bench)
			rng := rand.New(rand.NewSource(5))
			batch := [][]*big.Int{bench.GenInputs(rng)}
			b.ReportMetric(float64(prog.Quad.NumConstraints()), "constraints")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vc.RunBatch(context.Background(), prog, quickCfg(1, false), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 9: encodings ---

func BenchmarkFig9Encodings(b *testing.B) {
	for _, bench := range benchprogs.Small() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			var st compiler.EncodingStats
			for i := 0; i < b.N; i++ {
				prog, err := compiler.Compile(bench.Field, bench.Source)
				if err != nil {
					b.Fatal(err)
				}
				st = prog.Stats()
			}
			b.ReportMetric(float64(st.UGinger), "u-ginger")
			b.ReportMetric(float64(st.UZaatar), "u-zaatar")
			b.ReportMetric(float64(st.K2), "K2")
		})
	}
}

// --- Ablations ---

// BenchmarkAblationHPipeline compares the prover's FFT-based H(t)
// construction (§A.3) against naive O(n²) interpolation — the gap is the
// paper's "nearly linear" prover claim in action.
func BenchmarkAblationHPipeline(b *testing.B) {
	// Naive interpolation is O(|C|³) overall, so this ablation uses a small
	// hand-built system (a 256-step squaring chain); the gap is already two
	// orders of magnitude here and only widens with size.
	f := field.F128()
	const k = 256
	one := f.One()
	qs := &constraint.QuadSystem{NumVars: k + 1, In: []int{1}, Out: []int{k + 1}}
	for i := 1; i <= k; i++ {
		qs.Cons = append(qs.Cons, constraint.QuadConstraint{
			A: constraint.LinComb{{Coeff: one, Var: i}},
			B: constraint.LinComb{{Coeff: one, Var: i}},
			C: constraint.LinComb{{Coeff: one, Var: i + 1}},
		})
	}
	canonical, perm := qs.Normalize()
	q, err := qap.New(f, canonical)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]field.Element, k+2)
	w[0] = one
	cur := f.FromUint64(3)
	w[1] = cur
	for i := 2; i <= k+1; i++ {
		cur = f.Mul(cur, cur)
		w[i] = cur
	}
	w = perm.ApplyToAssignment(w)
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.BuildH(w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.BuildHNaive(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPolyMul compares NTT against schoolbook multiplication
// at a proof-sized operand.
func BenchmarkAblationPolyMul(b *testing.B) {
	f := field.F128()
	rnd := prg.NewFromSeed([]byte("pm"), 0)
	x := f.RandVector(2048, rnd)
	y := f.RandVector(2048, rnd)
	b.Run("ntt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			poly.MulNTT(f, x, y)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			poly.MulNaive(f, x, y)
		}
	})
}

// BenchmarkAblationMLEFold compares the sum-check prover's round fold in
// its specialized single-multiplication form (the table is padded to a
// power of two, so R[2k] + r·(R[2k+1]−R[2k]) covers it with no tail)
// against the textbook two-multiplication fold, at a GKR-layer-sized
// table.
func BenchmarkAblationMLEFold(b *testing.B) {
	f := field.F128()
	rnd := prg.NewFromSeed([]byte("mle-fold"), 0)
	const size = 1 << 16
	tbl := f.RandVector(size, rnd)
	r := f.Rand(rnd)
	scratch := make([]field.Element, size)
	b.Run("onemul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, tbl)
			pcp.FoldMLE(f, scratch, r)
		}
	})
	b.Run("twomul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, tbl)
			pcp.FoldMLETwoMul(f, scratch, r)
		}
	})
}

// BenchmarkAblationCommitment measures what the ElGamal commitment adds to
// the prover (the "crypto ops" column of Figure 5).
func BenchmarkAblationCommitment(b *testing.B) {
	bench := benchprogs.LCS(6)
	prog := compiled(b, bench)
	rng := rand.New(rand.NewSource(7))
	batch := [][]*big.Int{bench.GenInputs(rng)}
	for _, crypto := range []bool{false, true} {
		name := "off"
		if crypto {
			name = "on"
		}
		b.Run("crypto-"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vc.RunBatch(context.Background(), prog, quickCfg(1, crypto), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// multiexpInputs caches the shared ablation fixture: n subgroup elements
// and exponents for the production F128 group (generating 4096 bases costs
// thousands of modexps; do it once across sub-benchmarks).
var multiexpInputs = struct {
	sync.Mutex
	bases, exps map[int][]*big.Int
}{bases: map[int][]*big.Int{}, exps: map[int][]*big.Int{}}

func multiexpFixture(b *testing.B, n int) ([]*big.Int, []*big.Int) {
	b.Helper()
	multiexpInputs.Lock()
	defer multiexpInputs.Unlock()
	if bs, ok := multiexpInputs.bases[n]; ok {
		return bs, multiexpInputs.exps[n]
	}
	g := elgamal.GroupF128()
	f := field.F128()
	rnd := prg.NewFromSeed([]byte("multiexp-ablation"), uint64(n))
	bases := make([]*big.Int, n)
	exps := make([]*big.Int, n)
	for i := range bases {
		bases[i] = new(big.Int).Exp(g.G, f.ToBig(f.Rand(rnd)), g.P)
		exps[i] = f.ToBig(f.Rand(rnd))
	}
	multiexpInputs.bases[n] = bases
	multiexpInputs.exps[n] = exps
	return bases, exps
}

// BenchmarkAblationMultiexp compares the homomorphic inner product's
// engine room across algorithms and sizes: naive exp-and-multiply (one
// full-width modexp per base — the seed's ScalarMul+Add path), Straus
// interleaved windows, Pippenger buckets, and the sharded parallel kernel.
func BenchmarkAblationMultiexp(b *testing.B) {
	g := elgamal.GroupF128()
	algos := []struct {
		name string
		run  func(bases, exps []*big.Int) *big.Int
	}{
		{"naive", g.MultiExpNaive},
		{"straus", g.MultiExpStraus},
		{"pippenger", g.MultiExpPippenger},
		{"pippenger-signed", g.MultiExpSigned},
		{"parallel", func(bases, exps []*big.Int) *big.Int {
			return g.MultiExpParallel(bases, exps, 4)
		}},
	}
	for _, n := range []int{64, 256, 1024, 4096} {
		bases, exps := multiexpFixture(b, n)
		for _, algo := range algos {
			b.Run(fmt.Sprintf("%s/n=%d", algo.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = algo.run(bases, exps)
				}
			})
		}
	}
}

// BenchmarkPreparedInnerProduct compares the commit phase's homomorphic
// inner product with and without a PreparedVector: prepared bases skip the
// per-call Montgomery conversion and get signed-digit windows with their
// batch inversion already paid, which is how the cost amortizes across the
// β instances of a batch that all commit against the same Enc(r).
func BenchmarkPreparedInnerProduct(b *testing.B) {
	g := elgamal.GroupF128()
	f := field.F128()
	rnd := prg.NewFromSeed([]byte("prepared-ip-bench"), 1)
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{256, 1024} {
		m := f.RandVector(n, rnd)
		cts, err := sk.EncryptVector(f, m, rnd)
		if err != nil {
			b.Fatal(err)
		}
		u := f.RandVector(n, rnd)
		b.Run(fmt.Sprintf("unprepared/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.InnerProduct(cts, f, u); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("prepared/n=%d", n), func(b *testing.B) {
			pv := g.Prepare(cts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.InnerProductPrepared(pv, f, u, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProtocols runs both encodings end to end on the same small
// computation — the measured (not estimated) Zaatar vs Ginger comparison.
func BenchmarkProtocols(b *testing.B) {
	bench := benchprogs.LCS(6)
	prog := compiled(b, bench)
	rng := rand.New(rand.NewSource(8))
	batch := [][]*big.Int{bench.GenInputs(rng)}
	for _, proto := range []vc.Protocol{vc.Zaatar, vc.Ginger} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			cfg := quickCfg(1, false)
			cfg.Protocol = proto
			for i := 0; i < b.N; i++ {
				if _, err := vc.RunBatch(context.Background(), prog, cfg, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
