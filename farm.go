package zaatar

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net"
	"sort"
	"sync/atomic"

	"zaatar/internal/farm"
	"zaatar/internal/obs"
	"zaatar/internal/transport"
)

// FarmError attributes a farm (or multi-prover session) failure to one
// worker: Addr names the worker, Leg its connection index, and Unwrap
// exposes the cause. RunBatch on a farm client returns one only when a
// shard could not be recovered (every retry exhausted, or all workers
// lost); a mere verification failure is never an error — it surfaces as
// SessionResult.Accepted[i] == false.
type FarmError = transport.FarmError

// FarmRouting selects how DialFarm orders workers for shard placement.
type FarmRouting int

const (
	// FarmAffinity (the default) ranks the workers by a rendezvous hash of
	// the program's source digest and the worker address, so a given
	// program consistently fronts the same workers across farm restarts —
	// the ones whose program caches and artifact stores are already warm.
	FarmAffinity FarmRouting = iota
	// FarmStatic keeps the caller's address order.
	FarmStatic
)

// WithFarmRouting selects the worker-ordering policy for DialFarm; other
// dial paths ignore it.
func WithFarmRouting(r FarmRouting) RunOption {
	return runOption(func(o *options) { o.farmRouting = r })
}

// WithShardRetries bounds how many times a farm may requeue one shard after
// a worker death before failing the batch. The default is 2; negative
// disables requeueing (any worker death fails the batch).
func WithShardRetries(n int) RunOption {
	return runOption(func(o *options) { o.shardRetries = n })
}

// WithFarmShardSize fixes the number of instances per farm shard. By
// default the farm sizes shards so each live worker expects about two —
// small enough for work stealing to absorb stragglers, large enough to
// amortize the per-shard key generation.
func WithFarmShardSize(n int) RunOption {
	return runOption(func(o *options) { o.shardSize = n })
}

// WithFarmWideCommit lets a farm split a single instance's commitment
// multiexp across up to k cooperating workers when a batch has fewer
// instances than the farm has workers (each worker commits against a
// masked share of Enc(r); the partial commitments multiply back into the
// single-prover commitment). Off by default: every cooperating worker
// still solves the constraints and builds H(t) itself, so wide commits pay
// off only when the commitment crypto dominates. Values below 2 disable it.
func WithFarmWideCommit(k int) RunOption {
	return runOption(func(o *options) { o.wideCommit = k })
}

// rankAddrs orders worker addresses by rendezvous hash of the program
// digest: each worker scores sha256(srcDigest ‖ addr), and higher scores
// front the ranking. Every farm for the same program computes the same
// order whatever order the caller listed the workers in, which is what
// keeps shard placement (and so each worker's program cache) stable across
// restarts.
func rankAddrs(addrs []string, src string) []string {
	digest := sha256.Sum256([]byte(src))
	type ranked struct {
		addr  string
		score [sha256.Size]byte
	}
	rs := make([]ranked, len(addrs))
	for i, a := range addrs {
		h := sha256.New()
		h.Write(digest[:])
		h.Write([]byte(a))
		copy(rs[i].score[:], h.Sum(nil))
		rs[i].addr = a
	}
	sort.SliceStable(rs, func(i, j int) bool {
		return string(rs[i].score[:]) > string(rs[j].score[:])
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.addr
	}
	return out
}

// DialFarm connects to a fleet of prover workers and returns a Client that
// shards every batch across them: each shard runs as an independent
// mini-batch (its own commitment key and query seed, so shards are sound to
// run concurrently and to replay) on one worker, placed affinity-first with
// work stealing for stragglers. A worker that dies mid-batch has its shard
// requeued onto the survivors (bounded by WithShardRetries); only an
// unrecoverable failure surfaces, as a *FarmError naming the worker. The
// returned Client behaves exactly like a Dial'ed one — same RunBatch, same
// result shape, verdicts index-aligned with the batch.
//
// All workers must speak wire v2 or later (shards ride the keep-alive
// session machinery). Scheduling telemetry lands in the farm.* metric
// series of the registry given by WithMetrics (or the default registry).
func DialFarm(ctx context.Context, addrs []string, src string, opts ...RunOption) (*Client, error) {
	o := buildRunOptions(opts)
	var clean []string
	for _, a := range addrs {
		if a != "" {
			clean = append(clean, a)
		}
	}
	if len(clean) == 0 {
		return nil, fmt.Errorf("zaatar: no worker addresses")
	}
	if o.farmRouting == FarmAffinity {
		clean = rankAddrs(clean, src)
	}
	sess, err := dialSession(ctx, clean, src, o)
	if err != nil {
		return nil, err
	}
	f, err := farm.New(sess, farm.Options{
		ShardRetries: o.shardRetries,
		ShardSize:    o.shardSize,
		WideCommit:   o.wideCommit,
		Workers:      o.cfg.Workers,
		Seed:         o.cfg.Seed,
		Obs:          o.cfg.Obs,
		Logger:       o.logger,
	})
	if err != nil {
		_ = sess.Close()
		return nil, err
	}
	return &Client{sess: f}, nil
}

// ServeWorker runs a farm worker on ln: an ordinary prover service (farm
// shards arrive as ordinary wire batches, so any Serve-based server can be
// a worker) that additionally reports the farm.worker.up gauge — 1 while
// serving, 0 once drained — in the registry given by WithServerMetrics (or
// the default registry).
func ServeWorker(ctx context.Context, ln net.Listener, opts ...ServerOption) error {
	var o serverOptions
	for _, fn := range opts {
		fn(&o)
	}
	reg := o.svc.Obs
	if reg == nil {
		reg = obs.Default()
	}
	var up atomic.Int64
	up.Store(1)
	reg.RegisterGauge(farm.MetricWorkerUp, func() float64 { return float64(up.Load()) })
	defer up.Store(0)
	return Serve(ctx, ln, opts...)
}
