module zaatar

go 1.22
